#include "core/calendar.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/obs.h"

namespace caldb {

namespace {

// Sharing observability (docs/OBSERVABILITY.md): rep_shares counts handle
// copies / views that reused an existing rep; rep_copies counts fresh reps
// materialized out of existing calendar data (Nested, unsorted Flattened);
// cow_rebuilds counts rebuild-on-write of a whole value (TransformLeaves).
struct CalMetrics {
  obs::Counter* rep_shares = obs::Metrics().counter("caldb.cal.rep_shares");
  obs::Counter* rep_copies = obs::Metrics().counter("caldb.cal.rep_copies");
  obs::Counter* cow_rebuilds =
      obs::Metrics().counter("caldb.cal.cow_rebuilds");
};

CalMetrics& Metrics() {
  static CalMetrics* metrics = new CalMetrics();
  return *metrics;
}

}  // namespace

Calendar::Calendar(const Calendar& other)
    : rep_(other.rep_),
      granularity_(other.granularity_),
      level_(other.level_),
      begin_(other.begin_),
      end_(other.end_),
      leaf_begin_(other.leaf_begin_),
      leaf_end_(other.leaf_end_) {
  if (rep_) Metrics().rep_shares->Increment();
}

Calendar& Calendar::operator=(const Calendar& other) {
  if (this == &other) return *this;
  rep_ = other.rep_;
  granularity_ = other.granularity_;
  level_ = other.level_;
  begin_ = other.begin_;
  end_ = other.end_;
  leaf_begin_ = other.leaf_begin_;
  leaf_end_ = other.leaf_end_;
  if (rep_) Metrics().rep_shares->Increment();
  return *this;
}

Calendar Calendar::Root(CalendarRep rep, Granularity g) {
  rep.Finalize();
  auto shared = std::make_shared<const CalendarRep>(std::move(rep));
  const uint32_t top = static_cast<uint32_t>(shared->TopCount());
  const uint32_t leaves = static_cast<uint32_t>(shared->leaves.size());
  Granularity gran = g;
  return Calendar(std::move(shared), gran, /*level=*/0, /*begin=*/0,
                  /*end=*/top, /*leaf_begin=*/0, /*leaf_end=*/leaves);
}

Calendar Calendar::Order1(Granularity g, std::vector<Interval> intervals) {
  for (const Interval& i : intervals) {
    (void)i;
    CALDB_DCHECK(IsValidPoint(i.lo) && IsValidPoint(i.hi) && i.lo <= i.hi,
                 "invalid interval in Calendar::Order1");
  }
  std::sort(intervals.begin(), intervals.end(), IntervalLess);
  CalendarRep rep;
  rep.order = 1;
  rep.leaves = std::move(intervals);
  return Root(std::move(rep), g);
}

Result<Calendar> Calendar::MakeOrder1(Granularity g,
                                      std::vector<Interval> intervals) {
  for (const Interval& i : intervals) {
    if (!IsValidPoint(i.lo) || !IsValidPoint(i.hi)) {
      return Status::InvalidArgument(
          "interval endpoint 0 is not a valid time point");
    }
    if (i.lo > i.hi) {
      return Status::InvalidArgument("interval " + FormatInterval(i) +
                                     " has lo > hi");
    }
  }
  return Order1(g, std::move(intervals));
}

Calendar Calendar::Nested(Granularity g, std::vector<Calendar> children,
                          int order_if_empty) {
  CALDB_DCHECK(order_if_empty >= 2, "Nested calendars have order >= 2");
  const int child_order =
      children.empty() ? order_if_empty - 1 : children.front().order();
  CalendarRep rep;
  rep.order = child_order + 1;
  rep.offsets.assign(static_cast<size_t>(rep.order - 1), {0});
  for (const Calendar& child : children) {
    CALDB_DCHECK(child.order() == child_order,
                 "Calendar::Nested requires children of equal order");
    rep.offsets[0].push_back(rep.offsets[0].back() +
                             static_cast<uint32_t>(child.size()));
    std::vector<std::vector<uint32_t>> child_offsets = child.ViewOffsets();
    for (int k = 0; k + 1 < child_order; ++k) {
      std::vector<uint32_t>& dst = rep.offsets[static_cast<size_t>(k) + 1];
      const uint32_t base = dst.back();
      const std::vector<uint32_t>& src = child_offsets[static_cast<size_t>(k)];
      for (size_t idx = 1; idx < src.size(); ++idx) {
        dst.push_back(base + src[idx]);
      }
    }
    IntervalSpan lv = child.Leaves();
    rep.leaves.insert(rep.leaves.end(), lv.begin(), lv.end());
  }
  if (!children.empty()) Metrics().rep_copies->Increment();
  return Root(std::move(rep), g);
}

Calendar Calendar::NestedLike(const Calendar& shape, Granularity g,
                              std::vector<std::vector<Interval>> groups) {
  CALDB_DCHECK(static_cast<int64_t>(groups.size()) == shape.TotalIntervals(),
               "NestedLike requires one group per shape leaf");
  CalendarRep rep;
  rep.order = shape.order() + 1;
  rep.offsets = shape.ViewOffsets();
  std::vector<uint32_t> inner;
  inner.reserve(groups.size() + 1);
  inner.push_back(0);
  size_t total = 0;
  for (const std::vector<Interval>& grp : groups) total += grp.size();
  rep.leaves.reserve(total);
  for (std::vector<Interval>& grp : groups) {
    std::sort(grp.begin(), grp.end(), IntervalLess);
    rep.leaves.insert(rep.leaves.end(), grp.begin(), grp.end());
    inner.push_back(static_cast<uint32_t>(rep.leaves.size()));
  }
  rep.offsets.push_back(std::move(inner));
  return Root(std::move(rep), g);
}

IntervalSpan Calendar::Leaves() const {
  if (!rep_) return {};
  return IntervalSpan(rep_->leaves.data() + leaf_begin_,
                      leaf_end_ - leaf_begin_);
}

Calendar Calendar::child(size_t i) const {
  CALDB_DCHECK(rep_ != nullptr && order() > 1 && i < size(),
               "Calendar::child requires a nested calendar and i < size()");
  const std::vector<uint32_t>& level = rep_->offsets[static_cast<size_t>(level_)];
  uint32_t b = level[begin_ + static_cast<uint32_t>(i)];
  uint32_t e = level[begin_ + static_cast<uint32_t>(i) + 1];
  // Walk the CSR levels down to the leaf range of the child view.
  uint32_t lb = b;
  uint32_t le = e;
  for (int k = level_ + 1; k + 1 < rep_->order; ++k) {
    lb = rep_->offsets[static_cast<size_t>(k)][lb];
    le = rep_->offsets[static_cast<size_t>(k)][le];
  }
  Metrics().rep_shares->Increment();
  return Calendar(rep_, granularity_, level_ + 1, b, e, lb, le);
}

void Calendar::ForEachLeafGroup(
    const std::function<void(size_t, IntervalSpan)>& fn) const {
  if (order() == 1) {
    fn(0, Leaves());
    return;
  }
  // Elements at level order-2 are the order-1 groups; compose the view's
  // element range down to that level, then cut leaves by the innermost
  // offsets.
  uint32_t b = begin_;
  uint32_t e = end_;
  for (int k = level_; k + 2 < rep_->order; ++k) {
    b = rep_->offsets[static_cast<size_t>(k)][b];
    e = rep_->offsets[static_cast<size_t>(k)][e];
  }
  const std::vector<uint32_t>& inner = rep_->offsets.back();
  const Interval* base = rep_->leaves.data();
  for (uint32_t t = b; t < e; ++t) {
    fn(inner[t] - leaf_begin_,
       IntervalSpan(base + inner[t], inner[t + 1] - inner[t]));
  }
}

std::vector<std::vector<uint32_t>> Calendar::ViewOffsets() const {
  std::vector<std::vector<uint32_t>> out;
  if (!rep_ || order() == 1) return out;
  uint32_t b = begin_;
  uint32_t e = end_;
  for (int k = level_; k + 1 < rep_->order; ++k) {
    const std::vector<uint32_t>& src = rep_->offsets[static_cast<size_t>(k)];
    std::vector<uint32_t> lvl(src.begin() + b, src.begin() + e + 1);
    const uint32_t base = lvl.front();
    for (uint32_t& x : lvl) x -= base;
    out.push_back(std::move(lvl));
    b = src[b];
    e = src[e];
  }
  return out;
}

Calendar Calendar::Flattened() const {
  if (!rep_ || order() == 1) return *this;
  if (rep_->leaves_sorted) {
    // Order-1 view over the same leaf run — no copy, no sort.
    Metrics().rep_shares->Increment();
    return Calendar(rep_, granularity_, rep_->order - 1, leaf_begin_,
                    leaf_end_, leaf_begin_, leaf_end_);
  }
  IntervalSpan lv = Leaves();
  Metrics().rep_copies->Increment();
  return Order1(granularity_, std::vector<Interval>(lv.begin(), lv.end()));
}

std::optional<Interval> Calendar::Span() const {
  if (IsNull()) return std::nullopt;
  if (leaf_begin_ == 0 && leaf_end_ == rep_->leaves.size()) {
    return rep_->span;  // precomputed for whole-rep handles
  }
  IntervalSpan lv = Leaves();
  // Within one order-1 group (and in globally sorted buffers) the first
  // leaf has the minimal lo; hi is not monotone and needs the scan.
  const bool lo_sorted = order() == 1 || rep_->leaves_sorted;
  TimePoint lo = lv.front().lo;
  TimePoint hi = lv.front().hi;
  for (const Interval& i : lv) {
    if (!lo_sorted && i.lo < lo) lo = i.lo;
    if (i.hi > hi) hi = i.hi;
  }
  return Interval{lo, hi};
}

bool Calendar::ContainsPoint(TimePoint p) const {
  const bool lo_sorted = order() == 1 || (rep_ && rep_->leaves_sorted);
  for (const Interval& i : Leaves()) {
    if (lo_sorted && i.lo > p) break;
    if (i.Contains(p)) return true;
  }
  return false;
}

std::string Calendar::ToString() const {
  std::string out = "{";
  if (order() == 1) {
    IntervalSpan lv = Leaves();
    for (size_t i = 0; i < lv.size(); ++i) {
      if (i > 0) out += ",";
      out += FormatInterval(lv[i]);
    }
  } else {
    for (size_t i = 0; i < size(); ++i) {
      if (i > 0) out += ",";
      out += child(i).ToString();
    }
  }
  out += "}";
  return out;
}

Result<Calendar> Calendar::TransformLeaves(
    Granularity g,
    const std::function<Result<Interval>(const Interval&)>& fn) const {
  std::vector<Interval> mapped;
  mapped.reserve(static_cast<size_t>(TotalIntervals()));
  for (const Interval& i : Leaves()) {
    CALDB_ASSIGN_OR_RETURN(Interval m, fn(i));
    mapped.push_back(m);
  }
  CalendarRep rep;
  rep.order = order();
  rep.offsets = ViewOffsets();
  rep.leaves = std::move(mapped);
  Metrics().cow_rebuilds->Increment();
  return Root(std::move(rep), g);
}

bool Calendar::operator==(const Calendar& other) const {
  if (granularity_ != other.granularity_ || order() != other.order()) {
    return false;
  }
  if (rep_ == other.rep_ && level_ == other.level_ && begin_ == other.begin_ &&
      end_ == other.end_) {
    return true;  // same view of the same rep
  }
  if (size() != other.size() || TotalIntervals() != other.TotalIntervals()) {
    return false;
  }
  if (order() == 1) {
    IntervalSpan a = Leaves();
    IntervalSpan b = other.Leaves();
    return std::equal(a.begin(), a.end(), b.begin());
  }
  for (size_t i = 0; i < size(); ++i) {
    if (!(child(i) == other.child(i))) return false;
  }
  return true;
}

}  // namespace caldb
