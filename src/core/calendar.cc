#include "core/calendar.h"

#include <algorithm>

#include "common/macros.h"

namespace caldb {

Calendar Calendar::Order1(Granularity g, std::vector<Interval> intervals) {
  Calendar c;
  c.granularity_ = g;
  c.order_ = 1;
  for (const Interval& i : intervals) {
    (void)i;
    CALDB_DCHECK(IsValidPoint(i.lo) && IsValidPoint(i.hi) && i.lo <= i.hi,
                 "invalid interval in Calendar::Order1");
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
            });
  c.intervals_ = std::move(intervals);
  return c;
}

Result<Calendar> Calendar::MakeOrder1(Granularity g,
                                      std::vector<Interval> intervals) {
  for (const Interval& i : intervals) {
    if (!IsValidPoint(i.lo) || !IsValidPoint(i.hi)) {
      return Status::InvalidArgument(
          "interval endpoint 0 is not a valid time point");
    }
    if (i.lo > i.hi) {
      return Status::InvalidArgument("interval " + FormatInterval(i) +
                                     " has lo > hi");
    }
  }
  return Order1(g, std::move(intervals));
}

Calendar Calendar::Nested(Granularity g, std::vector<Calendar> children,
                          int order_if_empty) {
  Calendar c;
  c.granularity_ = g;
  CALDB_DCHECK(order_if_empty >= 2, "Nested calendars have order >= 2");
  int child_order =
      children.empty() ? order_if_empty - 1 : children.front().order();
  for (Calendar& child : children) {
    CALDB_DCHECK(child.order() == child_order,
                 "Calendar::Nested requires children of equal order");
    child.set_granularity(g);
  }
  c.order_ = child_order + 1;
  c.children_ = std::move(children);
  return c;
}

void Calendar::set_granularity(Granularity g) {
  granularity_ = g;
  for (Calendar& child : children_) child.set_granularity(g);
}

bool Calendar::IsNull() const {
  if (order_ == 1) return intervals_.empty();
  for (const Calendar& child : children_) {
    if (!child.IsNull()) return false;
  }
  return true;
}

int64_t Calendar::TotalIntervals() const {
  if (order_ == 1) return static_cast<int64_t>(intervals_.size());
  int64_t total = 0;
  for (const Calendar& child : children_) total += child.TotalIntervals();
  return total;
}

namespace {
void CollectLeaves(const Calendar& c, std::vector<Interval>* out) {
  if (c.order() == 1) {
    out->insert(out->end(), c.intervals().begin(), c.intervals().end());
    return;
  }
  for (const Calendar& child : c.children()) CollectLeaves(child, out);
}
}  // namespace

Calendar Calendar::Flattened() const {
  std::vector<Interval> leaves;
  CollectLeaves(*this, &leaves);
  return Order1(granularity_, std::move(leaves));
}

std::optional<Interval> Calendar::Span() const {
  if (order_ == 1) {
    if (intervals_.empty()) return std::nullopt;
    TimePoint lo = intervals_.front().lo;
    TimePoint hi = intervals_.front().hi;
    for (const Interval& i : intervals_) hi = std::max(hi, i.hi);
    return Interval{lo, hi};
  }
  std::optional<Interval> span;
  for (const Calendar& child : children_) {
    std::optional<Interval> s = child.Span();
    if (!s) continue;
    if (!span) {
      span = s;
    } else {
      span->lo = std::min(span->lo, s->lo);
      span->hi = std::max(span->hi, s->hi);
    }
  }
  return span;
}

bool Calendar::ContainsPoint(TimePoint p) const {
  if (order_ == 1) {
    // intervals_ sorted by lo: binary search for the last interval with
    // lo <= p, then check span membership of candidates before it (hi is
    // not monotone in general, so scan back conservatively).
    for (const Interval& i : intervals_) {
      if (i.lo > p) break;
      if (i.Contains(p)) return true;
    }
    return false;
  }
  for (const Calendar& child : children_) {
    if (child.ContainsPoint(p)) return true;
  }
  return false;
}

std::string Calendar::ToString() const {
  std::string out = "{";
  if (order_ == 1) {
    for (size_t i = 0; i < intervals_.size(); ++i) {
      if (i > 0) out += ",";
      out += FormatInterval(intervals_[i]);
    }
  } else {
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += ",";
      out += children_[i].ToString();
    }
  }
  out += "}";
  return out;
}

bool Calendar::operator==(const Calendar& other) const {
  return granularity_ == other.granularity_ && order_ == other.order_ &&
         intervals_ == other.intervals_ && children_ == other.children_;
}

}  // namespace caldb
