// The calendar-algebra operators of §3.1: the strict/relaxed foreach
// (dicing), selection (slicing), and the set operators used by calendar
// scripts (+ union, - difference, and the `intersects` listop).

#ifndef CALDB_CORE_ALGEBRA_H_
#define CALDB_CORE_ALGEBRA_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/calendar.h"
#include "core/interval.h"

namespace caldb {

// ---------------------------------------------------------------------------
// foreach (dicing)

/// Applies `{C :Op: I}` (strict) or `{C .Op. I}` (relaxed) with an interval
/// right operand.  C must be order-1.  Strict clips kept elements to I for
/// the overlapping ops (see ListOpClipsUnderStrict); relaxed keeps elements
/// whole.  Empty results are dropped (the paper's "/{ε}").
Result<Calendar> ForEachInterval(const Calendar& c, ListOp op,
                                 const Interval& rhs, bool strict);

/// Applies foreach with a calendar right operand.
///
/// - If `rhs` is a singleton (order-1 with one interval) it is treated as a
///   plain interval (the paper's "Jan-1993 is the interval {(1,31)}") and
///   the result has order 1.
/// - If `rhs` is order-1 with several intervals, foreach is applied per
///   element and the result has order 2 (one child per rhs interval; a
///   child may be empty).
/// - If `rhs` has order k > 1, foreach maps over its children and the
///   result has order k+1.
/// - `intersects` is special (it is how the scripts spell set
///   intersection): the result is always order-1 — strict yields the
///   clipped intersection of the two point sets, relaxed keeps whole
///   elements of C that overlap rhs.
Result<Calendar> ForEach(const Calendar& c, ListOp op, const Calendar& rhs,
                         bool strict);

// ---------------------------------------------------------------------------
// selection (slicing)

/// One component of a selection predicate `[x]`: an index (1-based;
/// negative counts from the end), `n` (the last element), or an inclusive
/// 1-based range.
struct SelectionItem {
  enum class Kind { kIndex, kLast, kRange };
  Kind kind = Kind::kIndex;
  int64_t index = 0;       // kIndex: 1-based, nonzero; negative from end
  int64_t range_lo = 0;    // kRange
  int64_t range_hi = 0;    // kRange (may be kLastMarker for open "a..n")
  static constexpr int64_t kLastMarker = INT64_MIN;

  static SelectionItem Index(int64_t i) {
    return SelectionItem{Kind::kIndex, i, 0, 0};
  }
  static SelectionItem Last() { return SelectionItem{Kind::kLast, 0, 0, 0}; }
  static SelectionItem Range(int64_t lo, int64_t hi) {
    return SelectionItem{Kind::kRange, 0, lo, hi};
  }
  bool operator==(const SelectionItem&) const = default;
};

/// `[x]/C`: selects elements from C (§3.1).  On an order-1 calendar the
/// predicate picks intervals.  On an order-n calendar (n >= 2) it picks the
/// x-th element of each order-(n-1) component and splices the selections
/// together, so the result has order n-1 (the paper's
/// `[3]/WEEKS:overlaps:Year-1993` flattens to order 1).
///
/// Out-of-range semantics (see docs/ALGEBRA.md): indices beyond the element
/// count — positive (`[5]` on a 4-week month) or negative (`[-8]` on a
/// 5-element calendar) — select nothing; they never wrap around.  Malformed
/// predicates are rejected with InvalidArgument: an empty predicate, index
/// 0, a range starting below 1, or a range whose end precedes its start.
/// Range ends are clamped to the element count, so over-long ranges cost
/// O(n), not O(range width).
Result<Calendar> Select(const std::vector<SelectionItem>& predicate,
                        const Calendar& c);

// ---------------------------------------------------------------------------
// set operators

/// Point-set union.  Both operands must be order-1 and share granularity.
/// Overlapping intervals are merged; intervals that merely meet end-to-end
/// are kept distinct (so element counts stay meaningful for selection).
Result<Calendar> Union(const Calendar& a, const Calendar& b);

/// Point-set difference a - b (may split intervals of a).
Result<Calendar> Difference(const Calendar& a, const Calendar& b);

/// Point-set intersection (clipped pieces of a).
Result<Calendar> Intersection(const Calendar& a, const Calendar& b);

}  // namespace caldb

#endif  // CALDB_CORE_ALGEBRA_H_
