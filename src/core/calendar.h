// Calendar: a structured collection of intervals (§3.1).
//
// A calendar of order 1 is a list of intervals sorted by start point; a
// calendar of order n > 1 is a list of calendars of order n-1 (all sharing
// the calendar's granularity).  Every calendar carries the granularity its
// points are expressed in.
//
// Representation: a Calendar is a thin copy-on-write handle over an
// immutable, shared_ptr-shared CalendarRep (one contiguous leaf buffer plus
// per-level CSR offsets — see calendar_rep.h).  Copying a Calendar, storing
// it in a cache, taking a child view or flattening a sorted calendar never
// copies interval data; only the builders (Order1/Nested/...) materialize a
// new rep.
//
// COW contract: handles never mutate shared state.  The only mutator,
// set_granularity, acts on the handle alone (granularity is a handle
// property, not a rep property), so two handles sharing one rep cannot
// observe each other's mutations.  Everything reachable through a handle
// (children(), intervals(), Flattened()) is a view that stays valid as long
// as any handle on the same rep is alive.

#ifndef CALDB_CORE_CALENDAR_H_
#define CALDB_CORE_CALENDAR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/calendar_rep.h"
#include "core/interval.h"
#include "time/granularity.h"

namespace caldb {

class Calendar {
 public:
  /// An empty order-1 calendar of days.
  Calendar() = default;

  // Handle copies share the rep (counted as "caldb.cal.rep_shares").
  Calendar(const Calendar& other);
  Calendar& operator=(const Calendar& other);
  Calendar(Calendar&&) noexcept = default;
  Calendar& operator=(Calendar&&) noexcept = default;

  /// Builds an order-1 calendar; intervals are sorted by (lo, hi).
  /// Intervals must be valid (nonzero endpoints, lo <= hi); this is a
  /// library invariant, checked in debug builds.  Use MakeOrder1 for
  /// untrusted input.
  static Calendar Order1(Granularity g, std::vector<Interval> intervals);

  /// Validating variant of Order1 for untrusted (parsed) input.
  static Result<Calendar> MakeOrder1(Granularity g,
                                     std::vector<Interval> intervals);

  /// Builds an order-(k+1) calendar from order-k children.  All children
  /// must share the same order; their granularity is overridden by `g`.
  /// `order_if_empty` (>= 2) fixes the order when `children` is empty —
  /// an empty order-3 calendar is distinct from an empty order-2 one, and
  /// the foreach operators rely on rectangular results.
  static Calendar Nested(Granularity g, std::vector<Calendar> children,
                         int order_if_empty = 2);

  /// Builds an order-(shape.order()+1) calendar whose grouping mirrors
  /// `shape`'s nesting, with shape's j-th leaf interval (tree order)
  /// replaced by the order-1 group `groups[j]` (each group is sorted on
  /// build).  Precondition: groups.size() == shape.TotalIntervals().  This
  /// is how the foreach operators assemble their result directly in CSR
  /// form, without per-child vector assembly.
  static Calendar NestedLike(const Calendar& shape, Granularity g,
                             std::vector<std::vector<Interval>> groups);

  /// A single-interval order-1 calendar.
  static Calendar Singleton(Granularity g, Interval i) {
    return Order1(g, {i});
  }

  int order() const { return rep_ ? rep_->order - level_ : 1; }
  Granularity granularity() const { return granularity_; }

  /// Sets the granularity of this handle (children views inherit it).
  /// O(1) and COW-safe: the shared rep is untouched, so other handles on
  /// the same rep keep their own granularity.
  void set_granularity(Granularity g) { granularity_ = g; }

  /// Top-level element count (intervals for order 1, children otherwise).
  size_t size() const { return end_ - begin_; }

  /// True when the calendar contains no interval at any depth.  O(1).
  bool IsNull() const { return leaf_begin_ == leaf_end_; }

  /// Order-1 accessor: zero-copy view of the intervals.  Empty for nested
  /// calendars (mirrors the historical empty-vector behavior).  The view
  /// is valid while any handle on the same rep is alive.
  IntervalSpan intervals() const {
    if (order() != 1) return {};
    return Leaves();
  }

  /// All leaf intervals at any depth, in tree order — the zero-copy
  /// unsorted flatten.  O(1).
  IntervalSpan Leaves() const;

  /// True when Leaves() is globally sorted by (lo, hi) (precomputed on the
  /// shared rep; conservative false for views of unsorted buffers).
  bool LeavesSorted() const { return !rep_ || rep_->leaves_sorted; }

  /// The i-th top-level child as a view sharing this rep.  Precondition:
  /// order() > 1 and i < size().
  Calendar child(size_t i) const;

  /// Iterable, indexable view of the top-level children (order() > 1).
  /// Elements are Calendar handles built on demand; `for (const Calendar&
  /// c : cal.children())` works as before.  Defined after the class.
  class ChildList;
  ChildList children() const;

  /// Calls fn(leaf_offset, group) once per order-1 group in tree order;
  /// `leaf_offset` is the group's first leaf index relative to Leaves().
  /// For order 1 there is exactly one group (the whole calendar).
  void ForEachLeafGroup(
      const std::function<void(size_t, IntervalSpan)>& fn) const;

  /// True when this order-1 calendar has exactly one interval — such
  /// calendars are treated as plain intervals by the foreach operators
  /// (the paper's Jan-1993 = {(1,31)} "is an interval").
  bool IsSingleton() const { return order() == 1 && size() == 1; }

  /// Total number of intervals at all depths.  O(1).
  int64_t TotalIntervals() const {
    return static_cast<int64_t>(leaf_end_) - static_cast<int64_t>(leaf_begin_);
  }

  /// Concatenates all leaf intervals into an order-1 calendar (sorted).
  /// Zero-copy when the shared leaf buffer is already globally sorted
  /// (every generated base calendar; most algebra results); otherwise a
  /// sorted rep is materialized ("caldb.cal.rep_copies").
  Calendar Flattened() const;

  /// The covering interval (min lo, max hi), or nullopt when null.  O(1)
  /// for whole-rep handles (precomputed); O(#leaves in view) for views.
  std::optional<Interval> Span() const;

  /// True when point `p` (in this calendar's granularity) lies inside some
  /// leaf interval.
  bool ContainsPoint(TimePoint p) const;

  /// Rebuilds this calendar with granularity `g` and every leaf mapped
  /// through `fn` (which must preserve (lo, hi) order, as granularity
  /// conversions do); the nesting structure is copied wholesale instead of
  /// being reassembled recursively.  Counted as "caldb.cal.cow_rebuilds".
  Result<Calendar> TransformLeaves(
      Granularity g,
      const std::function<Result<Interval>(const Interval&)>& fn) const;

  /// Paper notation: "{(1,31),(32,59)}" / "{{(4,10)},{(32,38)}}".
  std::string ToString() const;

  /// Structural equality: granularity, order, grouping shape and leaf
  /// intervals — independent of whether the operands share a rep.
  bool operator==(const Calendar& other) const;

 private:
  Calendar(std::shared_ptr<const CalendarRep> rep, Granularity g, int level,
           uint32_t begin, uint32_t end, uint32_t leaf_begin,
           uint32_t leaf_end)
      : rep_(std::move(rep)),
        granularity_(g),
        level_(level),
        begin_(begin),
        end_(end),
        leaf_begin_(leaf_begin),
        leaf_end_(leaf_end) {}

  /// Wraps a finalized rep as a root handle.
  static Calendar Root(CalendarRep rep, Granularity g);

  /// This view's CSR offsets, rebased so that level 0 is the view's top
  /// level and the last level indexes [0, TotalIntervals()).
  std::vector<std::vector<uint32_t>> ViewOffsets() const;

  std::shared_ptr<const CalendarRep> rep_;  // null = empty order-1
  Granularity granularity_ = Granularity::kDays;
  int level_ = 0;                  // nesting level of this view in rep_
  uint32_t begin_ = 0, end_ = 0;   // element range at level_
  uint32_t leaf_begin_ = 0, leaf_end_ = 0;  // covered leaf range
};

class Calendar::ChildList {
 public:
  class iterator {
   public:
    iterator(const Calendar* parent, size_t i) : parent_(parent), i_(i) {}
    Calendar operator*() const { return parent_->child(i_); }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    const Calendar* parent_;
    size_t i_;
  };
  explicit ChildList(const Calendar& parent) : parent_(parent) {}
  size_t size() const { return parent_.size(); }
  Calendar operator[](size_t i) const { return parent_.child(i); }
  iterator begin() const { return iterator(&parent_, 0); }
  iterator end() const { return iterator(&parent_, parent_.size()); }

 private:
  Calendar parent_;  // keeps the rep alive for the list's lifetime
};

inline Calendar::ChildList Calendar::children() const {
  return ChildList(*this);
}

}  // namespace caldb

#endif  // CALDB_CORE_CALENDAR_H_
