// Calendar: a structured collection of intervals (§3.1).
//
// A calendar of order 1 is a list of intervals sorted by start point; a
// calendar of order n > 1 is a list of calendars of order n-1 (all sharing
// the calendar's granularity).  Every calendar carries the granularity its
// points are expressed in.

#ifndef CALDB_CORE_CALENDAR_H_
#define CALDB_CORE_CALENDAR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/interval.h"
#include "time/granularity.h"

namespace caldb {

class Calendar {
 public:
  /// An empty order-1 calendar of days.
  Calendar() = default;

  /// Builds an order-1 calendar; intervals are sorted by (lo, hi).
  /// Intervals must be valid (nonzero endpoints, lo <= hi); this is a
  /// library invariant, checked in debug builds.  Use MakeOrder1 for
  /// untrusted input.
  static Calendar Order1(Granularity g, std::vector<Interval> intervals);

  /// Validating variant of Order1 for untrusted (parsed) input.
  static Result<Calendar> MakeOrder1(Granularity g,
                                     std::vector<Interval> intervals);

  /// Builds an order-(k+1) calendar from order-k children.  All children
  /// must share the same order; their granularity is overridden by `g`.
  /// `order_if_empty` (>= 2) fixes the order when `children` is empty —
  /// an empty order-3 calendar is distinct from an empty order-2 one, and
  /// the foreach operators rely on rectangular results.
  static Calendar Nested(Granularity g, std::vector<Calendar> children,
                         int order_if_empty = 2);

  /// A single-interval order-1 calendar.
  static Calendar Singleton(Granularity g, Interval i) {
    return Order1(g, {i});
  }

  int order() const { return order_; }
  Granularity granularity() const { return granularity_; }
  void set_granularity(Granularity g);  // recursive

  /// Top-level element count (intervals for order 1, children otherwise).
  size_t size() const {
    return order_ == 1 ? intervals_.size() : children_.size();
  }

  /// True when the calendar contains no interval at any depth.
  bool IsNull() const;

  /// Order-1 accessors. Precondition: order() == 1.
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Nested accessors. Precondition: order() > 1.
  const std::vector<Calendar>& children() const { return children_; }

  /// True when this order-1 calendar has exactly one interval — such
  /// calendars are treated as plain intervals by the foreach operators
  /// (the paper's Jan-1993 = {(1,31)} "is an interval").
  bool IsSingleton() const { return order_ == 1 && intervals_.size() == 1; }

  /// Total number of intervals at all depths.
  int64_t TotalIntervals() const;

  /// Concatenates all leaf intervals into an order-1 calendar (sorted).
  Calendar Flattened() const;

  /// The covering interval (min lo, max hi), or nullopt when null.
  std::optional<Interval> Span() const;

  /// True when point `p` (in this calendar's granularity) lies inside some
  /// leaf interval.
  bool ContainsPoint(TimePoint p) const;

  /// Paper notation: "{(1,31),(32,59)}" / "{{(4,10)},{(32,38)}}".
  std::string ToString() const;

  bool operator==(const Calendar& other) const;

 private:
  Granularity granularity_ = Granularity::kDays;
  int order_ = 1;
  std::vector<Interval> intervals_;  // order_ == 1
  std::vector<Calendar> children_;   // order_ > 1
};

}  // namespace caldb

#endif  // CALDB_CORE_CALENDAR_H_
