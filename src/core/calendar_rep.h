// CalendarRep: the immutable, shared flat representation behind Calendar.
//
// The paper's calendars are nested collections of intervals; structurally
// the nesting is pure metadata over a flat leaf sequence.  CalendarRep
// stores exactly that: one contiguous buffer of leaf intervals (in tree
// order) plus one CSR offset array per nesting level, so an order-n
// calendar carries n-1 offset levels.  The rep is immutable after
// Finalize() and shared by `shared_ptr` between every Calendar handle that
// views it — handle copies, children views, zero-copy flattens, cache
// entries — which turns the old O(total intervals) deep copy at every
// assignment into a pointer bump.
//
// Layout, for an order-n rep:
//   - level k (0 <= k <= n-1) is a conceptual element sequence; level 0 is
//     the calendar's top-level list and level n-1 is `leaves` itself.
//   - offsets[k] (0 <= k <= n-2) has (#elements at level k) + 1 entries;
//     element i at level k spans elements [offsets[k][i], offsets[k][i+1])
//     of level k+1.  offsets[n-2] therefore indexes `leaves` directly.
//   - each order-1 group (the ranges cut out of `leaves` by offsets[n-2],
//     or the whole buffer when n == 1) is sorted by (lo, hi) — the same
//     invariant Calendar::Order1 has always enforced.
//
// Precomputed metadata: `span` (min lo / max hi over all leaves) and
// `leaves_sorted` (whole buffer sorted by (lo, hi)), which make Span() on
// root handles O(1) and Flattened() a zero-copy view whenever the buffer
// is already globally sorted (true for every generated base calendar and
// most foreach results).
//
// Granularity deliberately does NOT live here: it is a property of the
// Calendar handle, so set_granularity never touches shared state (see the
// COW contract in calendar.h).

#ifndef CALDB_CORE_CALENDAR_REP_H_
#define CALDB_CORE_CALENDAR_REP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/interval.h"

namespace caldb {

/// Zero-copy view over a run of leaf intervals inside a CalendarRep (or
/// any contiguous Interval storage — std::vector converts implicitly).
using IntervalSpan = std::span<const Interval>;

struct CalendarRep {
  int order = 1;
  /// All leaf intervals, concatenated in tree order.
  std::vector<Interval> leaves;
  /// CSR offsets, one array per nesting level (empty for order 1).
  std::vector<std::vector<uint32_t>> offsets;

  // --- metadata precomputed by Finalize() -------------------------------
  /// Covering interval over all leaves; meaningful iff !leaves.empty().
  Interval span{1, 1};
  /// True when the whole leaf buffer is sorted by (lo, hi) — unlocks the
  /// zero-copy Flattened() view and early-exit point probes.
  bool leaves_sorted = true;

  /// Number of top-level elements.
  size_t TopCount() const {
    return order == 1 ? leaves.size() : offsets[0].size() - 1;
  }

  /// Computes span / leaves_sorted.  Must be called exactly once, after
  /// which the rep is immutable.
  void Finalize();
};

/// (lo, hi) lexicographic order — the order-1 group invariant.
inline bool IntervalLess(const Interval& a, const Interval& b) {
  return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
}

}  // namespace caldb

#endif  // CALDB_CORE_CALENDAR_REP_H_
