#include "core/generate.h"

#include "common/macros.h"
#include "core/sweep.h"

namespace caldb {

Result<Calendar> GenerateBaseCalendar(const TimeSystem& ts, Granularity g,
                                      Granularity unit, const Interval& span,
                                      bool clip) {
  if (FinerThan(g, unit)) {
    return Status::InvalidArgument(
        std::string("generate: unit ") + std::string(GranularityName(unit)) +
        " is coarser than calendar granularity " +
        std::string(GranularityName(g)));
  }
  CALDB_ASSIGN_OR_RETURN(TimePoint first,
                         ts.GranuleContaining(g, span.lo, unit));
  std::vector<Interval> out;
  for (TimePoint idx = first;; idx = PointAdd(idx, 1)) {
    CALDB_ASSIGN_OR_RETURN(Interval r, ts.GranuleToUnit(g, idx, unit));
    if (r.lo > span.hi) break;
    if (clip) {
      std::optional<Interval> clipped = Intersect(r, span);
      if (clipped) out.push_back(*clipped);
    } else {
      out.push_back(r);
    }
  }
  return Calendar::Order1(unit, std::move(out));
}

Result<Calendar> CalOperate(const Calendar& c, std::optional<TimePoint> te,
                            const std::vector<int64_t>& groups) {
  if (c.order() != 1) {
    return Status::InvalidArgument("caloperate requires an order-1 calendar");
  }
  if (groups.empty()) {
    return Status::InvalidArgument("caloperate requires a nonempty group list");
  }
  for (int64_t x : groups) {
    if (x <= 0) {
      return Status::InvalidArgument("caloperate group sizes must be positive");
    }
  }
  // Grouping is a sweep: one covering interval per group of consecutive
  // elements, O(#groups) emits after the te cutoff scan.  A group that
  // straddles the epoch (first.lo < 0 < last.hi) is a closed range of
  // skip-zero points — it never contains the nonexistent point 0 (see
  // Interval::Contains).
  return Calendar::Order1(c.granularity(),
                          SweepGroup(c.intervals(), te, groups));
}

namespace {

// Granule conversion is monotone in (lo, hi), so mapping the flat leaf
// buffer in place of the old per-level recursion preserves every group's
// sort order; the nesting structure is copied wholesale by TransformLeaves.
Result<Calendar> RescaleImpl(const TimeSystem& ts, const Calendar& c,
                             Granularity target) {
  const Granularity from = c.granularity();
  return c.TransformLeaves(
      target, [&](const Interval& i) -> Result<Interval> {
        CALDB_ASSIGN_OR_RETURN(Interval lo_range,
                               ts.GranuleToUnit(from, i.lo, target));
        CALDB_ASSIGN_OR_RETURN(Interval hi_range,
                               ts.GranuleToUnit(from, i.hi, target));
        return Interval{lo_range.lo, hi_range.hi};
      });
}

}  // namespace

Result<Interval> IntervalToUnit(const TimeSystem& ts, Granularity from,
                                const Interval& i, Granularity to) {
  if (from == to) return i;
  if (FinerThan(from, to)) {
    CALDB_ASSIGN_OR_RETURN(TimePoint lo, ts.GranuleContaining(to, i.lo, from));
    CALDB_ASSIGN_OR_RETURN(TimePoint hi, ts.GranuleContaining(to, i.hi, from));
    return Interval{lo, hi};
  }
  CALDB_ASSIGN_OR_RETURN(Interval lo, ts.GranuleToUnit(from, i.lo, to));
  CALDB_ASSIGN_OR_RETURN(Interval hi, ts.GranuleToUnit(from, i.hi, to));
  return Interval{lo.lo, hi.hi};
}

Result<Interval> IntervalToDays(const TimeSystem& ts, Granularity g,
                                const Interval& i) {
  return IntervalToUnit(ts, g, i, Granularity::kDays);
}

Result<Calendar> Rescale(const TimeSystem& ts, const Calendar& c,
                         Granularity target) {
  if (c.granularity() == target) return c;
  if (FinerThan(c.granularity(), target)) {
    return Status::InvalidArgument(
        std::string("cannot rescale ") +
        std::string(GranularityName(c.granularity())) + " calendar to coarser " +
        std::string(GranularityName(target)));
  }
  return RescaleImpl(ts, c, target);
}

Result<std::string> FormatCalendarCivil(const TimeSystem& ts,
                                        const Calendar& c) {
  if (c.order() != 1) {
    return Status::InvalidArgument(
        "civil rendering is defined for order-1 calendars; Flattened() first");
  }
  std::string out = "{";
  for (size_t i = 0; i < c.intervals().size(); ++i) {
    if (i > 0) out += ", ";
    CALDB_ASSIGN_OR_RETURN(
        Interval days, IntervalToDays(ts, c.granularity(), c.intervals()[i]));
    if (days.lo == days.hi) {
      out += FormatCivil(ts.CivilFromDayPoint(days.lo));
    } else {
      out += "[" + FormatCivil(ts.CivilFromDayPoint(days.lo)) + ".." +
             FormatCivil(ts.CivilFromDayPoint(days.hi)) + "]";
    }
  }
  out += "}";
  return out;
}

}  // namespace caldb
