#include "core/algebra.h"

#include <algorithm>

#include "common/macros.h"

namespace caldb {

namespace {

Status RequireOrder1(const Calendar& c, const char* what) {
  if (c.order() != 1) {
    return Status::InvalidArgument(std::string(what) +
                                   " requires an order-1 calendar, got order " +
                                   std::to_string(c.order()));
  }
  return Status::OK();
}

Status RequireSameGranularity(const Calendar& a, const Calendar& b,
                              const char* what) {
  if (a.granularity() != b.granularity()) {
    return Status::TypeError(
        std::string(what) + " requires matching granularities (" +
        std::string(GranularityName(a.granularity())) + " vs " +
        std::string(GranularityName(b.granularity())) + ")");
  }
  return Status::OK();
}

// Set intersection of two sorted order-1 interval lists (two-pointer).
std::vector<Interval> IntersectLists(const std::vector<Interval>& a,
                                     const std::vector<Interval>& b) {
  std::vector<Interval> out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (std::optional<Interval> x = Intersect(a[i], b[j])) out.push_back(*x);
    if (a[i].hi < b[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

// The intersects listop as used by calendar scripts: always order-1.
Result<Calendar> IntersectsOp(const Calendar& c, const Calendar& rhs,
                              bool strict) {
  CALDB_RETURN_IF_ERROR(RequireSameGranularity(c, rhs, "intersects"));
  CALDB_RETURN_IF_ERROR(RequireOrder1(c, "intersects left operand"));
  Calendar flat_rhs = rhs.order() == 1 ? rhs : rhs.Flattened();
  if (strict) {
    return Calendar::Order1(c.granularity(),
                            IntersectLists(c.intervals(), flat_rhs.intervals()));
  }
  // Relaxed: keep whole elements of C overlapping any rhs interval.
  std::vector<Interval> kept;
  for (const Interval& ci : c.intervals()) {
    for (const Interval& ri : flat_rhs.intervals()) {
      if (ri.lo > ci.hi) break;
      if (IntervalOverlaps(ci, ri)) {
        kept.push_back(ci);
        break;
      }
    }
  }
  return Calendar::Order1(c.granularity(), std::move(kept));
}

// True when upper endpoints are non-decreasing (holds for every
// disjoint sorted calendar, in particular all generated base calendars).
// Enables binary-search scan starts and early breaks below.
bool HiMonotone(const std::vector<Interval>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i].hi < v[i - 1].hi) return false;
  }
  return true;
}

// One foreach application against an interval, scanning only the slice of
// `c` that can satisfy `op` when `hi_monotone` licenses it.
Calendar ForEachIntervalScan(const Calendar& c, ListOp op, const Interval& rhs,
                             bool strict, bool hi_monotone) {
  const std::vector<Interval>& v = c.intervals();
  const bool clip = strict && ListOpClipsUnderStrict(op);
  std::vector<Interval> out;
  size_t begin = 0;
  if (hi_monotone &&
      (op == ListOp::kDuring || op == ListOp::kOverlaps ||
       op == ListOp::kIntersects)) {
    // Skip elements that end before rhs starts; none can match.
    begin = static_cast<size_t>(
        std::lower_bound(v.begin(), v.end(), rhs.lo,
                         [](const Interval& i, TimePoint lo) {
                           return i.hi < lo;
                         }) -
        v.begin());
  }
  for (size_t idx = begin; idx < v.size(); ++idx) {
    const Interval& ci = v[idx];
    // Early exits: intervals are sorted by lo (and by hi when monotone).
    if ((op == ListOp::kDuring || op == ListOp::kOverlaps ||
         op == ListOp::kIntersects) &&
        ci.lo > rhs.hi) {
      break;
    }
    if (op == ListOp::kBeforeEq && ci.lo > rhs.lo) break;
    if (hi_monotone && (op == ListOp::kBefore || op == ListOp::kMeets) &&
        ci.hi > rhs.lo) {
      break;
    }
    if (!EvalListOp(op, ci, rhs)) continue;
    if (clip) {
      std::optional<Interval> x = Intersect(ci, rhs);
      if (!x) continue;  // the paper's "/{ε}"
      out.push_back(*x);
    } else {
      out.push_back(ci);
    }
  }
  return Calendar::Order1(c.granularity(), std::move(out));
}

// foreach with forced nesting decision (`collapse_singleton` true only at
// the top level so that nested results stay rectangular).
Result<Calendar> ForEachImpl(const Calendar& c, ListOp op, const Calendar& rhs,
                             bool strict, bool collapse_singleton,
                             bool hi_monotone) {
  if (rhs.order() == 1) {
    if (collapse_singleton && rhs.IsSingleton()) {
      return ForEachIntervalScan(c, op, rhs.intervals().front(), strict,
                                 hi_monotone);
    }
    std::vector<Calendar> children;
    children.reserve(rhs.size());
    for (const Interval& i : rhs.intervals()) {
      children.push_back(ForEachIntervalScan(c, op, i, strict, hi_monotone));
    }
    return Calendar::Nested(c.granularity(), std::move(children),
                            /*order_if_empty=*/2);
  }
  std::vector<Calendar> children;
  children.reserve(rhs.children().size());
  for (const Calendar& rc : rhs.children()) {
    CALDB_ASSIGN_OR_RETURN(
        Calendar child,
        ForEachImpl(c, op, rc, strict, /*collapse_singleton=*/false,
                    hi_monotone));
    children.push_back(std::move(child));
  }
  return Calendar::Nested(c.granularity(), std::move(children),
                          /*order_if_empty=*/rhs.order() + 1);
}

}  // namespace

Result<Calendar> ForEachInterval(const Calendar& c, ListOp op,
                                 const Interval& rhs, bool strict) {
  CALDB_RETURN_IF_ERROR(RequireOrder1(c, "foreach left operand"));
  return ForEachIntervalScan(c, op, rhs, strict, HiMonotone(c.intervals()));
}

Result<Calendar> ForEach(const Calendar& c, ListOp op, const Calendar& rhs,
                         bool strict) {
  if (op == ListOp::kIntersects) return IntersectsOp(c, rhs, strict);
  CALDB_RETURN_IF_ERROR(RequireSameGranularity(c, rhs, "foreach"));
  CALDB_RETURN_IF_ERROR(RequireOrder1(c, "foreach left operand"));
  return ForEachImpl(c, op, rhs, strict, /*collapse_singleton=*/true,
                     HiMonotone(c.intervals()));
}

namespace {

// Resolves a selection predicate against an element count, producing
// zero-based positions in listed order.  Out-of-range indices are skipped.
std::vector<size_t> ResolvePositions(const std::vector<SelectionItem>& predicate,
                                     size_t count) {
  std::vector<size_t> positions;
  const int64_t n = static_cast<int64_t>(count);
  auto add = [&](int64_t pos_zero_based) {
    if (pos_zero_based >= 0 && pos_zero_based < n) {
      positions.push_back(static_cast<size_t>(pos_zero_based));
    }
  };
  for (const SelectionItem& item : predicate) {
    switch (item.kind) {
      case SelectionItem::Kind::kIndex:
        if (item.index > 0) {
          add(item.index - 1);
        } else if (item.index < 0) {
          add(n + item.index);
        }
        break;
      case SelectionItem::Kind::kLast:
        add(n - 1);
        break;
      case SelectionItem::Kind::kRange: {
        int64_t hi = item.range_hi == SelectionItem::kLastMarker ? n : item.range_hi;
        for (int64_t i = item.range_lo; i <= hi; ++i) add(i - 1);
        break;
      }
    }
  }
  return positions;
}

}  // namespace

Result<Calendar> Select(const std::vector<SelectionItem>& predicate,
                        const Calendar& c) {
  if (predicate.empty()) {
    return Status::InvalidArgument("empty selection predicate");
  }
  if (c.order() == 1) {
    std::vector<Interval> out;
    for (size_t pos : ResolvePositions(predicate, c.intervals().size())) {
      out.push_back(c.intervals()[pos]);
    }
    return Calendar::Order1(c.granularity(), std::move(out));
  }
  // Order n >= 2: pick the selected elements of each order-(n-1) component
  // and splice them together; the result has order n-1.
  if (c.order() == 2) {
    std::vector<Interval> out;
    for (const Calendar& child : c.children()) {
      for (size_t pos : ResolvePositions(predicate, child.intervals().size())) {
        out.push_back(child.intervals()[pos]);
      }
    }
    return Calendar::Order1(c.granularity(), std::move(out));
  }
  std::vector<Calendar> out_children;
  for (const Calendar& child : c.children()) {
    for (size_t pos : ResolvePositions(predicate, child.children().size())) {
      out_children.push_back(child.children()[pos]);
    }
  }
  return Calendar::Nested(c.granularity(), std::move(out_children),
                          /*order_if_empty=*/c.order() - 1);
}

Result<Calendar> Union(const Calendar& a, const Calendar& b) {
  CALDB_RETURN_IF_ERROR(RequireOrder1(a, "union"));
  CALDB_RETURN_IF_ERROR(RequireOrder1(b, "union"));
  CALDB_RETURN_IF_ERROR(RequireSameGranularity(a, b, "union"));
  std::vector<Interval> merged = a.intervals();
  merged.insert(merged.end(), b.intervals().begin(), b.intervals().end());
  std::sort(merged.begin(), merged.end(), [](const Interval& x, const Interval& y) {
    return x.lo != y.lo ? x.lo < y.lo : x.hi < y.hi;
  });
  std::vector<Interval> out;
  for (const Interval& i : merged) {
    if (!out.empty() && i.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, i.hi);
    } else {
      out.push_back(i);
    }
  }
  return Calendar::Order1(a.granularity(), std::move(out));
}

Result<Calendar> Difference(const Calendar& a, const Calendar& b) {
  CALDB_RETURN_IF_ERROR(RequireOrder1(a, "difference"));
  CALDB_RETURN_IF_ERROR(RequireOrder1(b, "difference"));
  CALDB_RETURN_IF_ERROR(RequireSameGranularity(a, b, "difference"));
  std::vector<Interval> out;
  // Both lists are sorted by lo; subtrahend elements wholly before the
  // current minuend can never matter again, so the scan start advances
  // monotonically (two-pointer sweep).
  size_t j_start = 0;
  for (const Interval& ai : a.intervals()) {
    // Remaining uncovered prefix of ai, tracked in offset space so that
    // splitting across the zero gap stays correct.
    int64_t lo_off = PointToOffset(ai.lo);
    const int64_t hi_off = PointToOffset(ai.hi);
    bool consumed = false;
    while (j_start < b.intervals().size() &&
           PointToOffset(b.intervals()[j_start].hi) < lo_off) {
      ++j_start;
    }
    for (size_t j = j_start; j < b.intervals().size(); ++j) {
      const Interval& bi = b.intervals()[j];
      const int64_t blo = PointToOffset(bi.lo);
      const int64_t bhi = PointToOffset(bi.hi);
      if (bhi < lo_off) continue;
      if (blo > hi_off) break;
      if (blo > lo_off) {
        out.push_back(Interval{OffsetToPoint(lo_off), OffsetToPoint(blo - 1)});
      }
      lo_off = bhi + 1;
      if (lo_off > hi_off) {
        consumed = true;
        break;
      }
    }
    if (!consumed) {
      out.push_back(Interval{OffsetToPoint(lo_off), OffsetToPoint(hi_off)});
    }
  }
  return Calendar::Order1(a.granularity(), std::move(out));
}

Result<Calendar> Intersection(const Calendar& a, const Calendar& b) {
  CALDB_RETURN_IF_ERROR(RequireOrder1(a, "intersection"));
  CALDB_RETURN_IF_ERROR(RequireOrder1(b, "intersection"));
  CALDB_RETURN_IF_ERROR(RequireSameGranularity(a, b, "intersection"));
  return Calendar::Order1(a.granularity(),
                          IntersectLists(a.intervals(), b.intervals()));
}

}  // namespace caldb
