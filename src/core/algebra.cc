#include "core/algebra.h"

#include <algorithm>

#include "common/macros.h"
#include "core/sweep.h"

namespace caldb {

namespace {

Status RequireOrder1(const Calendar& c, const char* what) {
  if (c.order() != 1) {
    return Status::InvalidArgument(std::string(what) +
                                   " requires an order-1 calendar, got order " +
                                   std::to_string(c.order()));
  }
  return Status::OK();
}

Status RequireSameGranularity(const Calendar& a, const Calendar& b,
                              const char* what) {
  if (a.granularity() != b.granularity()) {
    return Status::TypeError(
        std::string(what) + " requires matching granularities (" +
        std::string(GranularityName(a.granularity())) + " vs " +
        std::string(GranularityName(b.granularity())) + ")");
  }
  return Status::OK();
}

// The intersects listop as used by calendar scripts: always order-1.
Result<Calendar> IntersectsOp(const Calendar& c, const Calendar& rhs,
                              bool strict) {
  CALDB_RETURN_IF_ERROR(RequireSameGranularity(c, rhs, "intersects"));
  CALDB_RETURN_IF_ERROR(RequireOrder1(c, "intersects left operand"));
  Calendar flat_rhs = rhs.order() == 1 ? rhs : rhs.Flattened();
  if (strict) {
    return Calendar::Order1(
        c.granularity(), SweepIntersect(c.intervals(), flat_rhs.intervals()));
  }
  // Relaxed: keep whole elements of C overlapping any rhs interval.
  std::vector<Interval> kept;
  SweepSemiJoinOverlaps(c.intervals(), flat_rhs.intervals(),
                        [&](size_t i) { kept.push_back(c.intervals()[i]); });
  return Calendar::Order1(c.granularity(), std::move(kept));
}

// True when upper endpoints are non-decreasing (holds for every
// disjoint sorted calendar, in particular all generated base calendars).
// Unlocks the sweep kernel's pure-merge fast path and galloping skips.
bool HiMonotone(IntervalSpan v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i].hi < v[i - 1].hi) return false;
  }
  return true;
}

// One sweep over `c` against a run of rhs leaf intervals: returns one
// interval vector per rhs element (a child may stay empty — the paper's
// "/{ε}" dropping happens per emitted pair under the clipping ops).
std::vector<std::vector<Interval>> JoinPerRhsElement(
    const Calendar& c, ListOp op, IntervalSpan rhs_list, bool strict,
    bool hi_monotone) {
  IntervalSpan v = c.intervals();
  const bool clip = strict && ListOpClipsUnderStrict(op);
  std::vector<std::vector<Interval>> outs(rhs_list.size());
  SweepJoin(v, op, rhs_list, hi_monotone, [&](size_t i, size_t j) {
    if (clip) {
      std::optional<Interval> x = Intersect(v[i], rhs_list[j]);
      if (!x) return;  // the paper's "/{ε}"
      outs[j].push_back(*x);
    } else {
      outs[j].push_back(v[i]);
    }
  });
  return outs;
}

// One foreach application against a single interval.
Calendar ForEachIntervalSweep(const Calendar& c, ListOp op, const Interval& rhs,
                              bool strict, bool hi_monotone) {
  std::vector<std::vector<Interval>> outs =
      JoinPerRhsElement(c, op, IntervalSpan(&rhs, 1), strict, hi_monotone);
  return Calendar::Order1(c.granularity(), std::move(outs.front()));
}

// The foreach body for non-singleton rhs: the result's grouping always
// mirrors rhs's nesting with each rhs leaf replaced by the group of
// matching (possibly clipped) c intervals, so instead of recursing over
// rhs children we join c against rhs's flat leaf buffer and stamp out the
// result rep with rhs's own CSR structure (Calendar::NestedLike) — no
// per-child vector assembly at any depth.  When the rhs leaf buffer is
// globally sorted (every generated base calendar) a single sweep covers
// all rhs leaves; otherwise each order-1 group is swept separately, which
// preserves the kernels' sorted-run precondition.
Calendar ForEachFlat(const Calendar& c, ListOp op, const Calendar& rhs,
                     bool strict, bool hi_monotone) {
  std::vector<std::vector<Interval>> outs;
  if (rhs.order() == 1 || rhs.LeavesSorted()) {
    outs = JoinPerRhsElement(c, op, rhs.Leaves(), strict, hi_monotone);
  } else {
    outs.resize(static_cast<size_t>(rhs.TotalIntervals()));
    rhs.ForEachLeafGroup([&](size_t off, IntervalSpan group) {
      std::vector<std::vector<Interval>> part =
          JoinPerRhsElement(c, op, group, strict, hi_monotone);
      for (size_t j = 0; j < part.size(); ++j) {
        outs[off + j] = std::move(part[j]);
      }
    });
  }
  return Calendar::NestedLike(rhs, c.granularity(), std::move(outs));
}

}  // namespace

Result<Calendar> ForEachInterval(const Calendar& c, ListOp op,
                                 const Interval& rhs, bool strict) {
  CALDB_RETURN_IF_ERROR(RequireOrder1(c, "foreach left operand"));
  return ForEachIntervalSweep(c, op, rhs, strict, HiMonotone(c.intervals()));
}

Result<Calendar> ForEach(const Calendar& c, ListOp op, const Calendar& rhs,
                         bool strict) {
  if (op == ListOp::kIntersects) return IntersectsOp(c, rhs, strict);
  CALDB_RETURN_IF_ERROR(RequireSameGranularity(c, rhs, "foreach"));
  CALDB_RETURN_IF_ERROR(RequireOrder1(c, "foreach left operand"));
  const bool hi_monotone = HiMonotone(c.intervals());
  // A one-interval order-1 rhs "is an interval" (paper §3.1): the result
  // collapses to order 1 instead of nesting.  Only at the top level —
  // nested results stay rectangular.
  if (rhs.IsSingleton()) {
    return ForEachIntervalSweep(c, op, rhs.intervals().front(), strict,
                                hi_monotone);
  }
  return ForEachFlat(c, op, rhs, strict, hi_monotone);
}

namespace {

// Rejects malformed selection predicates: index 0 (no such position in the
// paper's 1-based scheme) and ranges with a nonpositive start or an end
// before the start.  Mirrors the parser's checks so the API enforces the
// same contract on programmatically built predicates.
Status ValidateSelection(const std::vector<SelectionItem>& predicate) {
  for (const SelectionItem& item : predicate) {
    switch (item.kind) {
      case SelectionItem::Kind::kIndex:
        if (item.index == 0) {
          return Status::InvalidArgument("selection index 0 is invalid");
        }
        break;
      case SelectionItem::Kind::kLast:
        break;
      case SelectionItem::Kind::kRange:
        if (item.range_lo < 1) {
          return Status::InvalidArgument(
              "selection range start " + std::to_string(item.range_lo) +
              " is invalid (ranges are 1-based)");
        }
        if (item.range_hi != SelectionItem::kLastMarker &&
            item.range_hi < item.range_lo) {
          return Status::InvalidArgument(
              "invalid selection range " + std::to_string(item.range_lo) +
              ".." + std::to_string(item.range_hi));
        }
        break;
    }
  }
  return Status::OK();
}

// Resolves a validated selection predicate against an element count,
// producing zero-based positions in listed order.  Out-of-range indices —
// positive or negative — select nothing (documented contract: months with
// fewer than 5 weeks simply contribute nothing to `[5]/...`, and `[-8]` on
// a 5-element calendar contributes nothing rather than wrapping around).
std::vector<size_t> ResolvePositions(const std::vector<SelectionItem>& predicate,
                                     size_t count) {
  std::vector<size_t> positions;
  const int64_t n = static_cast<int64_t>(count);
  auto add = [&](int64_t pos_zero_based) {
    if (pos_zero_based >= 0 && pos_zero_based < n) {
      positions.push_back(static_cast<size_t>(pos_zero_based));
    }
  };
  for (const SelectionItem& item : predicate) {
    switch (item.kind) {
      case SelectionItem::Kind::kIndex:
        if (item.index > 0) {
          add(item.index - 1);
        } else if (item.index < 0) {
          // Negative indices count from the end; |index| > n is out of
          // range and selects nothing (never wraps).
          add(n + item.index);
        }
        break;
      case SelectionItem::Kind::kLast:
        add(n - 1);
        break;
      case SelectionItem::Kind::kRange: {
        // Clamp to the element count so `[1..10^12]` costs O(n), not
        // O(range width).
        const int64_t hi =
            item.range_hi == SelectionItem::kLastMarker
                ? n
                : std::min<int64_t>(item.range_hi, n);
        for (int64_t i = item.range_lo; i <= hi; ++i) add(i - 1);
        break;
      }
    }
  }
  return positions;
}

}  // namespace

Result<Calendar> Select(const std::vector<SelectionItem>& predicate,
                        const Calendar& c) {
  if (predicate.empty()) {
    return Status::InvalidArgument("empty selection predicate");
  }
  CALDB_RETURN_IF_ERROR(ValidateSelection(predicate));
  if (c.order() == 1) {
    IntervalSpan v = c.intervals();
    std::vector<Interval> out;
    for (size_t pos : ResolvePositions(predicate, v.size())) {
      out.push_back(v[pos]);
    }
    return Calendar::Order1(c.granularity(), std::move(out));
  }
  // Order n >= 2: pick the selected elements of each order-(n-1) component
  // and splice them together; the result has order n-1.
  if (c.order() == 2) {
    std::vector<Interval> out;
    c.ForEachLeafGroup([&](size_t, IntervalSpan group) {
      for (size_t pos : ResolvePositions(predicate, group.size())) {
        out.push_back(group[pos]);
      }
    });
    return Calendar::Order1(c.granularity(), std::move(out));
  }
  std::vector<Calendar> out_children;
  for (const Calendar& child : c.children()) {
    for (size_t pos : ResolvePositions(predicate, child.size())) {
      out_children.push_back(child.child(pos));
    }
  }
  return Calendar::Nested(c.granularity(), std::move(out_children),
                          /*order_if_empty=*/c.order() - 1);
}

Result<Calendar> Union(const Calendar& a, const Calendar& b) {
  CALDB_RETURN_IF_ERROR(RequireOrder1(a, "union"));
  CALDB_RETURN_IF_ERROR(RequireOrder1(b, "union"));
  CALDB_RETURN_IF_ERROR(RequireSameGranularity(a, b, "union"));
  return Calendar::Order1(a.granularity(),
                          SweepUnion(a.intervals(), b.intervals()));
}

Result<Calendar> Difference(const Calendar& a, const Calendar& b) {
  CALDB_RETURN_IF_ERROR(RequireOrder1(a, "difference"));
  CALDB_RETURN_IF_ERROR(RequireOrder1(b, "difference"));
  CALDB_RETURN_IF_ERROR(RequireSameGranularity(a, b, "difference"));
  return Calendar::Order1(a.granularity(),
                          SweepDifference(a.intervals(), b.intervals()));
}

Result<Calendar> Intersection(const Calendar& a, const Calendar& b) {
  CALDB_RETURN_IF_ERROR(RequireOrder1(a, "intersection"));
  CALDB_RETURN_IF_ERROR(RequireOrder1(b, "intersection"));
  CALDB_RETURN_IF_ERROR(RequireSameGranularity(a, b, "intersection"));
  return Calendar::Order1(a.granularity(),
                          SweepIntersect(a.intervals(), b.intervals()));
}

}  // namespace caldb
