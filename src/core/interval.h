// Interval: the primitive temporal entity of the calendar algebra (Allen
// 1985, §3.1 of the paper).  An interval is a closed range [lo, hi] of
// skip-zero time points in some granularity; by the paper's convention it
// never contains the (nonexistent) point 0.

#ifndef CALDB_CORE_INTERVAL_H_
#define CALDB_CORE_INTERVAL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/result.h"
#include "time/timepoint.h"

namespace caldb {

/// A closed interval of skip-zero time points.  Invariant: lo and hi are
/// valid points (nonzero) and lo <= hi.  Raw point comparison is
/// order-preserving across the zero gap, so < on points is fine.
struct Interval {
  TimePoint lo = 1;
  TimePoint hi = 1;

  bool operator==(const Interval&) const = default;

  /// Number of granules covered, skipping the zero gap: (-4,3) covers the
  /// 7 points -4,-3,-2,-1,1,2,3 — there is no point 0 to count.
  int64_t length() const { return PointDistance(lo, hi) + 1; }

  /// True when point `p` lies inside.  The nonexistent point 0 is never
  /// contained, even by an interval straddling the epoch gap like (-3,2).
  bool Contains(TimePoint p) const {
    return IsValidPoint(p) && lo <= p && p <= hi;
  }

  /// True when `other` lies fully inside this interval.
  bool Covers(const Interval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }
};

/// Validates and builds an interval (checks nonzero endpoints, lo <= hi).
Result<Interval> MakeInterval(TimePoint lo, TimePoint hi);

/// A single-point interval.
inline Interval PointInterval(TimePoint p) { return Interval{p, p}; }

/// Intersection, or nullopt when disjoint.
std::optional<Interval> Intersect(const Interval& a, const Interval& b);

/// "(lo,hi)" in the paper's notation.
std::string FormatInterval(const Interval& i);

// ---------------------------------------------------------------------------
// The listops (§3.1).  Each is a predicate over two intervals.

/// int1 overlaps int2 := int1 ∩ int2 != ∅.
bool IntervalOverlaps(const Interval& a, const Interval& b);

/// int1 during int2 := l1 >= l2 && u2 >= u1 (a inside b).
bool IntervalDuring(const Interval& a, const Interval& b);

/// int1 meets int2 := u1 == l2.
bool IntervalMeets(const Interval& a, const Interval& b);

/// int1 < int2 := u1 <= l2.
bool IntervalBefore(const Interval& a, const Interval& b);

/// int1 <= int2 := l1 <= l2 && u1 <= u2 (paper: (l1<=l2) ∧ (u2>=u1)).
bool IntervalBeforeEq(const Interval& a, const Interval& b);

/// The listop vocabulary usable with the foreach operators.  kIntersects is
/// the scripts' `intersects` (same predicate as overlaps; under the strict
/// foreach it yields set intersection).
enum class ListOp {
  kOverlaps,
  kDuring,
  kMeets,
  kBefore,    // <
  kBeforeEq,  // <=
  kIntersects,
};

/// Evaluates a listop predicate.
bool EvalListOp(ListOp op, const Interval& a, const Interval& b);

/// True for ops where the strict foreach clips the kept interval to the
/// right operand (overlaps / intersects / during).  For the non-overlapping
/// ops (<, <=, meets) the intersection in the paper's strict definition is
/// vacuous, and the paper's own §3.3 examples (AM_BUS_DAYS:<:LDOM_HOL) keep
/// intervals whole; we follow the examples.
bool ListOpClipsUnderStrict(ListOp op);

/// Canonical spelling ("overlaps", "during", "meets", "<", "<=",
/// "intersects").
std::string_view ListOpName(ListOp op);

/// Parses a listop spelling (also accepts "precedes" for <).
Result<ListOp> ParseListOp(std::string_view name);

}  // namespace caldb

#endif  // CALDB_CORE_INTERVAL_H_
