// generate / caloperate / rescale (§3.2): the procedures that materialize
// base calendars and derive new calendars by grouping.

#ifndef CALDB_CORE_GENERATE_H_
#define CALDB_CORE_GENERATE_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "core/calendar.h"
#include "time/time_system.h"

namespace caldb {

/// `generate(cal1, cal2, [ts, te])`: the granules of `g` overlapping
/// `span` (an interval of `unit` points), each expressed in `unit` points.
/// With `clip` true the first/last granule are clipped to the span — the
/// paper's generate(YEARS, DAYS, [Jan 1 1987, Jan 3 1992]) ends with
/// (1827,1829).  With `clip` false whole granules are kept — the paper's
/// WEEKS-of-1993 starts with (-4,3).  `unit` must be finer or equal to `g`.
Result<Calendar> GenerateBaseCalendar(const TimeSystem& ts, Granularity g,
                                      Granularity unit, const Interval& span,
                                      bool clip);

/// `caloperate(C, Te; (x1; ...; xn))`: derives a calendar whose k-th
/// interval spans the next x_{k mod n} consecutive intervals of C (the
/// group list is circular).  C must be order-1.  A trailing partial group
/// is kept.  When `te` is set, only source intervals with hi <= te are
/// consumed (the paper's "*" means no bound).
Result<Calendar> CalOperate(const Calendar& c, std::optional<TimePoint> te,
                            const std::vector<int64_t>& groups);

/// Re-expresses a calendar in a finer (or equal) granularity: each interval
/// (lo, hi) becomes (first target point of granule lo, last target point of
/// granule hi).  Recurses through nested calendars.
Result<Calendar> Rescale(const TimeSystem& ts, const Calendar& c,
                         Granularity target);

/// The `to`-unit interval covered by an interval of granularity `from`
/// (exact when `to` is finer; the covering granule range when coarser).
Result<Interval> IntervalToUnit(const TimeSystem& ts, Granularity from,
                                const Interval& i, Granularity to);

/// The DAYS interval covered by an interval of granularity `g` (for sub-day
/// granularities, the covering day range).
Result<Interval> IntervalToDays(const TimeSystem& ts, Granularity g,
                                const Interval& i);

/// Renders an order-1 calendar with civil dates — the human-facing output
/// the paper's §5 discussion (MultiCal's concern) is about:
///   "{[1993-01-04..1993-01-10], [1993-01-11..1993-01-17]}"
/// Sub-day calendars render their covering day range.  Single-day
/// intervals render as one date.
Result<std::string> FormatCalendarCivil(const TimeSystem& ts,
                                        const Calendar& c);

}  // namespace caldb

#endif  // CALDB_CORE_GENERATE_H_
