#include "core/interval.h"

#include <algorithm>

namespace caldb {

Result<Interval> MakeInterval(TimePoint lo, TimePoint hi) {
  if (!IsValidPoint(lo) || !IsValidPoint(hi)) {
    return Status::InvalidArgument("interval endpoint 0 is not a valid time point");
  }
  if (lo > hi) {
    return Status::InvalidArgument("interval lower bound " + std::to_string(lo) +
                                   " exceeds upper bound " + std::to_string(hi));
  }
  return Interval{lo, hi};
}

std::optional<Interval> Intersect(const Interval& a, const Interval& b) {
  TimePoint lo = std::max(a.lo, b.lo);
  TimePoint hi = std::min(a.hi, b.hi);
  if (lo > hi) return std::nullopt;
  return Interval{lo, hi};
}

std::string FormatInterval(const Interval& i) {
  return "(" + std::to_string(i.lo) + "," + std::to_string(i.hi) + ")";
}

bool IntervalOverlaps(const Interval& a, const Interval& b) {
  return std::max(a.lo, b.lo) <= std::min(a.hi, b.hi);
}

bool IntervalDuring(const Interval& a, const Interval& b) {
  return a.lo >= b.lo && b.hi >= a.hi;
}

bool IntervalMeets(const Interval& a, const Interval& b) { return a.hi == b.lo; }

bool IntervalBefore(const Interval& a, const Interval& b) { return a.hi <= b.lo; }

bool IntervalBeforeEq(const Interval& a, const Interval& b) {
  return a.lo <= b.lo && b.hi >= a.hi;
}

bool EvalListOp(ListOp op, const Interval& a, const Interval& b) {
  switch (op) {
    case ListOp::kOverlaps:
    case ListOp::kIntersects:
      return IntervalOverlaps(a, b);
    case ListOp::kDuring:
      return IntervalDuring(a, b);
    case ListOp::kMeets:
      return IntervalMeets(a, b);
    case ListOp::kBefore:
      return IntervalBefore(a, b);
    case ListOp::kBeforeEq:
      return IntervalBeforeEq(a, b);
  }
  return false;
}

bool ListOpClipsUnderStrict(ListOp op) {
  switch (op) {
    case ListOp::kOverlaps:
    case ListOp::kIntersects:
    case ListOp::kDuring:
      return true;
    case ListOp::kMeets:
    case ListOp::kBefore:
    case ListOp::kBeforeEq:
      return false;
  }
  return false;
}

std::string_view ListOpName(ListOp op) {
  switch (op) {
    case ListOp::kOverlaps:
      return "overlaps";
    case ListOp::kDuring:
      return "during";
    case ListOp::kMeets:
      return "meets";
    case ListOp::kBefore:
      return "<";
    case ListOp::kBeforeEq:
      return "<=";
    case ListOp::kIntersects:
      return "intersects";
  }
  return "?";
}

Result<ListOp> ParseListOp(std::string_view name) {
  if (name == "overlaps") return ListOp::kOverlaps;
  if (name == "during") return ListOp::kDuring;
  if (name == "meets") return ListOp::kMeets;
  if (name == "<" || name == "precedes") return ListOp::kBefore;
  if (name == "<=") return ListOp::kBeforeEq;
  if (name == "intersects") return ListOp::kIntersects;
  return Status::InvalidArgument("unknown listop '" + std::string(name) + "'");
}

}  // namespace caldb
