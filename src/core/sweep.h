// Sweep kernels: sort-merge sweeping over endpoint-sorted interval runs
// (after Piatov et al., "Cache-Efficient Sweeping-Based Interval Joins").
//
// Every calendar-algebra operator — the foreach family, the set operators,
// `intersects`, and caloperate grouping — reduces to one of the routines
// here.  All of them walk the two sorted runs with monotone cursors, so a
// join is O(n + m + k) (k = pairs emitted) instead of the naive O(n * m),
// with galloping (exponential) skip over long dead prefixes for the
// order-style predicates `<` and `<=`.
//
// Operands are IntervalSpan views, so the kernels run directly over the
// shared flat leaf buffer of a CalendarRep (or any std::vector<Interval>)
// without copying runs out first.
//
// Preconditions shared by every routine: interval runs are sorted by
// (lo, hi) — the Calendar order-1 invariant.  Upper endpoints need not be
// monotone; routines take a `hi_monotone` hint (true for every disjoint
// calendar, in particular all generated base calendars) that unlocks the
// pure-sweep fast path, and fall back to a guarded scan otherwise.
//
// Instrumentation: each call tallies comparisons / emitted pairs / elements
// skipped by galloping into the returned SweepStats and into the process
// metric registry ("caldb.sweep.*", see docs/OBSERVABILITY.md), so PROFILE
// and \stats can show the sweep win.

#ifndef CALDB_CORE_SWEEP_H_
#define CALDB_CORE_SWEEP_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/calendar_rep.h"  // IntervalSpan
#include "core/interval.h"
#include "time/timepoint.h"

namespace caldb {

/// Per-call kernel counters (also accumulated into "caldb.sweep.*").
struct SweepStats {
  int64_t comparisons = 0;   // endpoint comparisons performed
  int64_t emits = 0;         // pairs / intervals emitted
  int64_t gallop_skips = 0;  // elements stepped over without comparison
};

/// Receives one matching (lhs index, rhs index) pair.
using SweepEmit = std::function<void(size_t lhs_idx, size_t rhs_idx)>;

/// Emits every pair (i, j) with EvalListOp(op, lhs[i], rhs[j]) true, grouped
/// by j (rhs-major) with i increasing within each group — the order the
/// foreach operators need to assemble per-element children.
/// `lhs_hi_monotone` declares that lhs upper endpoints are non-decreasing.
SweepStats SweepJoin(IntervalSpan lhs, ListOp op,
                     IntervalSpan rhs, bool lhs_hi_monotone,
                     const SweepEmit& emit);

/// Semi-join for the relaxed `intersects`: emits each index of `items`
/// (increasing) whose interval overlaps at least one interval of `against`.
/// O(n + m) regardless of monotonicity.
SweepStats SweepSemiJoinOverlaps(IntervalSpan items,
                                 IntervalSpan against,
                                 const std::function<void(size_t)>& emit);

/// Point-set union by linear merge of two sorted runs: overlapping
/// intervals are merged, intervals that merely meet end-to-end are kept
/// distinct (element counts stay meaningful for selection).  Operands are
/// point sets: each run must be disjoint within itself.
std::vector<Interval> SweepUnion(IntervalSpan a,
                                 IntervalSpan b);

/// Point-set difference a - b (may split intervals of a).  Tracks the
/// uncovered remainder in offset space so splits across the skip-zero gap
/// never produce an interval containing the nonexistent point 0.
std::vector<Interval> SweepDifference(IntervalSpan a,
                                      IntervalSpan b);

/// Point-set intersection (clipped pieces of a).  Two-pointer sweep;
/// complete for disjoint runs (the point-set normal form of set operands).
std::vector<Interval> SweepIntersect(IntervalSpan a,
                                     IntervalSpan b);

/// The caloperate grouping loop: coalesces consecutive intervals of `src`
/// into groups whose sizes cycle through `groups` (all positive), stopping
/// at the first interval with hi > te when `te` is set.  Emits one covering
/// interval {first.lo, last.hi} per (possibly short) group.  O(#groups)
/// after the cutoff scan, instead of touching every member interval.
std::vector<Interval> SweepGroup(IntervalSpan src,
                                 std::optional<TimePoint> te,
                                 const std::vector<int64_t>& groups);

namespace naive {

/// The quadratic reference join: literal double loop over EvalListOp, same
/// emission order as SweepJoin.  Retained only as the differential-testing
/// and benchmarking baseline (tests/core/sweep_test.cc, bench/bench_sweep).
SweepStats Join(IntervalSpan lhs, ListOp op,
                IntervalSpan rhs, const SweepEmit& emit);

}  // namespace naive

}  // namespace caldb

#endif  // CALDB_CORE_SWEEP_H_
