#include "core/calendar_rep.h"

namespace caldb {

void CalendarRep::Finalize() {
  if (leaves.empty()) {
    leaves_sorted = true;
    return;
  }
  span = leaves.front();
  leaves_sorted = true;
  for (size_t i = 0; i < leaves.size(); ++i) {
    const Interval& l = leaves[i];
    if (l.lo < span.lo) span.lo = l.lo;
    if (l.hi > span.hi) span.hi = l.hi;
    if (i > 0 && IntervalLess(l, leaves[i - 1])) leaves_sorted = false;
  }
}

}  // namespace caldb
