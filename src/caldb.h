// caldb.h — the stable public facade of caldb.
//
// Applications include this single header and program against:
//
//   caldb::Engine        the thread-safe run-time (engine/engine.h):
//                        owns the database, the CALENDARS catalog, the
//                        temporal-rule manager and the DBCRON daemon;
//                        executes statements concurrently on a thread
//                        pool behind a reader/writer lock.  Set
//                        EngineOptions::data_dir to make it durable —
//                        WAL + snapshot recovery, docs/DURABILITY.md.
//   caldb::Session       a per-client handle (engine/session.h): window,
//                        `today`, a private evaluator with a warm
//                        gen-cache, and the uniform Execute() entry point
//                        (database statements, calendar scripts, EXPLAIN/
//                        PROFILE, catalog and rule DDL, clock control).
//   caldb::PreparedStatement
//                        the prepared-execution handle (engine/session.h):
//                        Session::Prepare(text) compiles once through the
//                        engine-wide statement cache; handle.Execute({...})
//                        binds $1..$n placeholder values and runs parse-
//                        free (db/compiled_statement.h).  This is THE
//                        prepared path — the older pair of raw-handle
//                        entry points, Session::Execute(CompiledStatement-
//                        Ptr) and Engine::ExecuteCompiled, are deprecated
//                        duplicates kept for source compatibility; see
//                        the migration note on Session::Execute(handle).
//   caldb::QueryResult   columns + rows, or a DML/DDL summary message.
//   caldb::Status        error model (common/status.h): caldb never
//   caldb::Result<T>     throws across this facade; every fallible call
//                        returns Status or Result<T> (common/result.h).
//
// Typical use:
//
//   #include "caldb.h"
//
//   auto engine = caldb::Engine::Create().value();
//   auto session = engine->CreateSession();
//   session->Execute("create table alerts (day int, what text)");
//   session->Execute("define calendar Tuesdays as [2]/DAYS:during:WEEKS");
//   session->Execute("declare rule t on Tuesdays do "
//                    "append alerts (day = $1, what = 'tuesday')");
//   session->Execute("advance to 1993-02-01");
//   auto stmt = session->Prepare(
//       "retrieve (a.what) from a in alerts where a.day = $1").value();
//   auto rows = stmt.Execute({caldb::Value::Int(32)});
//
// The subsystem headers pulled in below remain public for library-level
// embedding (calendar algebra without a database, finance day counts,
// time-series patterns), but constructing Database / DbCron /
// TemporalRuleManager directly is deprecated for concurrent use — go
// through Engine, which serializes access correctly (see the threading
// contract in docs/API.md).

#ifndef CALDB_CALDB_H_
#define CALDB_CALDB_H_

// Error model and the CALDB_RETURN_IF_ERROR / CALDB_ASSIGN_OR_RETURN
// propagation macros, plus small string helpers.
#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

// Time: civil dates, granularities, skip-zero points, the time system.
#include "time/civil.h"
#include "time/granularity.h"
#include "time/time_system.h"
#include "time/timepoint.h"

// Calendar values and the interval algebra of §3.
#include "core/calendar.h"
#include "core/generate.h"
#include "core/interval.h"

// The engine and sessions (the concurrent §4 architecture).
#include "engine/engine.h"
#include "engine/session.h"

// Library-level extras reachable through the facade: catalog persistence,
// market calendars / day counts (§5 workloads), time-series patterns.
#include "catalog/catalog_io.h"
#include "finance/day_count.h"
#include "finance/market_calendars.h"
#include "timeseries/pattern.h"
#include "timeseries/time_series.h"

// Observability: EXPLAIN/PROFILE reports come back through Execute();
// metric export and tracing for dashboards.
#include "obs/obs.h"

#endif  // CALDB_CALDB_H_
