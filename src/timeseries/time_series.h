// Time series bound to calendars — the valid-time maintenance story of §1:
//
//   "If these sets of future time points could be expressed by a database
//    query language, it would be unnecessary to store the time points
//    associated with time-series observations, since they could be
//    generated on request."
//
// A RegularTimeSeries stores only values; the time points come from
// re-evaluating the associated calendar (e.g. the GNP series bound to a
// last-day-of-quarter calendar).  An IrregularTimeSeries stores explicit
// (day, value) pairs for comparison.

#ifndef CALDB_TIMESERIES_TIME_SERIES_H_
#define CALDB_TIMESERIES_TIME_SERIES_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/calendar_catalog.h"

namespace caldb {

class RegularTimeSeries {
 public:
  /// Observation i is associated with the i-th interval of calendar
  /// `calendar_name` starting at/after `anchor_day`.  `catalog` must
  /// outlive the series.
  RegularTimeSeries(const CalendarCatalog* catalog, std::string calendar_name,
                    TimePoint anchor_day);

  const std::string& calendar_name() const { return calendar_name_; }
  TimePoint anchor_day() const { return anchor_day_; }
  size_t size() const { return values_.size(); }

  /// Appends the next observation.
  void Append(double value) { values_.push_back(value); }

  Result<double> ValueAt(size_t i) const;

  /// The DAYS interval of observation i, regenerated from the calendar.
  Result<Interval> IntervalAt(size_t i) const;

  /// The representative day of observation i (the interval's last day —
  /// GNP is recorded on the last day of the quarter).
  Result<TimePoint> DayAt(size_t i) const;

  /// Materializes (day, value) pairs — what a conventional system would
  /// have stored explicitly.
  Result<std::vector<std::pair<TimePoint, double>>> Materialize() const;

  /// The value whose interval contains `day`, if any.
  Result<std::optional<double>> ValueOn(TimePoint day) const;

  /// Observations whose representative day lies in [window.lo, window.hi].
  Result<std::vector<std::pair<TimePoint, double>>> Slice(
      const Interval& window) const;

 private:
  // Ensures intervals_cache_ holds at least `count` day intervals.
  Status EnsureIntervals(size_t count) const;

  const CalendarCatalog* catalog_;
  std::string calendar_name_;
  TimePoint anchor_day_;
  std::vector<double> values_;
  mutable std::vector<Interval> intervals_cache_;  // day intervals
};

class IrregularTimeSeries {
 public:
  /// Appends an observation; days must be strictly increasing.
  Status Append(TimePoint day, double value);

  size_t size() const { return points_.size(); }
  const std::vector<std::pair<TimePoint, double>>& points() const {
    return points_;
  }

  Result<std::optional<double>> ValueOn(TimePoint day) const;

  /// The observation days as an order-1 DAYS calendar.
  Calendar AsCalendar() const;

 private:
  std::vector<std::pair<TimePoint, double>> points_;
};

}  // namespace caldb

#endif  // CALDB_TIMESERIES_TIME_SERIES_H_
