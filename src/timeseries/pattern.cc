#include "timeseries/pattern.h"

#include <cctype>
#include <memory>
#include <optional>

#include "common/macros.h"
#include "common/strings.h"

namespace caldb {

namespace {

struct PExpr;
using PExprPtr = std::shared_ptr<PExpr>;

struct PExpr {
  enum class Kind { kSeries, kConst, kShift, kArith, kCompare, kLogic, kNot };
  Kind kind = Kind::kSeries;
  double constant = 0;
  int shift = 0;          // kShift
  char op = '+';          // kArith: + - * /; kCompare: one of < L(<=) > G(>=) = !
  bool logic_and = true;  // kLogic
  PExprPtr lhs;
  PExprPtr rhs;
};

// --- tiny lexer/parser ------------------------------------------------------

struct PToken {
  enum class Kind { kIdent, kNumber, kPunct, kEnd } kind = Kind::kEnd;
  std::string text;
  double number = 0;
};

Result<std::vector<PToken>> PLex(std::string_view src) {
  std::vector<PToken> tokens;
  size_t i = 0;
  while (i < src.size()) {
    char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    PToken tok;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        ++i;
      }
      tok.kind = PToken::Kind::kIdent;
      tok.text = std::string(src.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      size_t start = i;
      while (i < src.size() && (std::isdigit(static_cast<unsigned char>(src[i])) ||
                                src[i] == '.')) {
        ++i;
      }
      tok.kind = PToken::Kind::kNumber;
      Result<double> number = ParseDouble(src.substr(start, i - start));
      if (!number.ok()) {
        return Status::ParseError("bad number in pattern");
      }
      tok.number = *number;
    } else {
      tok.kind = PToken::Kind::kPunct;
      if (i + 1 < src.size()) {
        std::string_view two = src.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "!=") {
          tok.text = std::string(two);
          i += 2;
          tokens.push_back(tok);
          continue;
        }
      }
      static constexpr std::string_view kSingles = "()<>=+-*/";
      if (kSingles.find(c) == std::string_view::npos) {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' in pattern");
      }
      tok.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(tok);
  }
  tokens.push_back(PToken{});
  return tokens;
}

class PatternParser {
 public:
  explicit PatternParser(std::vector<PToken> tokens)
      : tokens_(std::move(tokens)) {}

  Result<PExprPtr> Parse() {
    CALDB_ASSIGN_OR_RETURN(PExprPtr e, ParseOr());
    if (Peek().kind != PToken::Kind::kEnd) {
      return Status::ParseError("trailing input in pattern");
    }
    return e;
  }

 private:
  const PToken& Peek() const { return tokens_[pos_]; }
  const PToken& Advance() {
    return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_];
  }
  bool MatchPunct(std::string_view p) {
    if (Peek().kind == PToken::Kind::kPunct && Peek().text == p) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchIdent(std::string_view name) {
    if (Peek().kind == PToken::Kind::kIdent &&
        EqualsIgnoreCase(Peek().text, name)) {
      Advance();
      return true;
    }
    return false;
  }

  Result<PExprPtr> ParseOr() {
    CALDB_ASSIGN_OR_RETURN(PExprPtr lhs, ParseAnd());
    while (MatchIdent("or")) {
      CALDB_ASSIGN_OR_RETURN(PExprPtr rhs, ParseAnd());
      auto node = std::make_shared<PExpr>();
      node->kind = PExpr::Kind::kLogic;
      node->logic_and = false;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<PExprPtr> ParseAnd() {
    CALDB_ASSIGN_OR_RETURN(PExprPtr lhs, ParseNot());
    while (MatchIdent("and")) {
      CALDB_ASSIGN_OR_RETURN(PExprPtr rhs, ParseNot());
      auto node = std::make_shared<PExpr>();
      node->kind = PExpr::Kind::kLogic;
      node->logic_and = true;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<PExprPtr> ParseNot() {
    if (MatchIdent("not")) {
      CALDB_ASSIGN_OR_RETURN(PExprPtr inner, ParseNot());
      auto node = std::make_shared<PExpr>();
      node->kind = PExpr::Kind::kNot;
      node->lhs = std::move(inner);
      return node;
    }
    return ParseCompare();
  }

  Result<PExprPtr> ParseCompare() {
    CALDB_ASSIGN_OR_RETURN(PExprPtr lhs, ParseAdd());
    char op = 0;
    if (MatchPunct("<=")) {
      op = 'L';
    } else if (MatchPunct(">=")) {
      op = 'G';
    } else if (MatchPunct("!=")) {
      op = '!';
    } else if (MatchPunct("<")) {
      op = '<';
    } else if (MatchPunct(">")) {
      op = '>';
    } else if (MatchPunct("=")) {
      op = '=';
    } else {
      return lhs;
    }
    CALDB_ASSIGN_OR_RETURN(PExprPtr rhs, ParseAdd());
    auto node = std::make_shared<PExpr>();
    node->kind = PExpr::Kind::kCompare;
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  Result<PExprPtr> ParseAdd() {
    CALDB_ASSIGN_OR_RETURN(PExprPtr lhs, ParseMul());
    while (Peek().kind == PToken::Kind::kPunct &&
           (Peek().text == "+" || Peek().text == "-")) {
      char op = Advance().text[0];
      CALDB_ASSIGN_OR_RETURN(PExprPtr rhs, ParseMul());
      auto node = std::make_shared<PExpr>();
      node->kind = PExpr::Kind::kArith;
      node->op = op;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<PExprPtr> ParseMul() {
    CALDB_ASSIGN_OR_RETURN(PExprPtr lhs, ParseFactor());
    while (Peek().kind == PToken::Kind::kPunct &&
           (Peek().text == "*" || Peek().text == "/")) {
      char op = Advance().text[0];
      CALDB_ASSIGN_OR_RETURN(PExprPtr rhs, ParseFactor());
      auto node = std::make_shared<PExpr>();
      node->kind = PExpr::Kind::kArith;
      node->op = op;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<PExprPtr> ParseFactor() {
    if (MatchPunct("(")) {
      CALDB_ASSIGN_OR_RETURN(PExprPtr inner, ParseOr());
      if (!MatchPunct(")")) return Status::ParseError("expected ')' in pattern");
      return inner;
    }
    if (MatchPunct("-")) {
      CALDB_ASSIGN_OR_RETURN(PExprPtr inner, ParseFactor());
      auto zero = std::make_shared<PExpr>();
      zero->kind = PExpr::Kind::kConst;
      zero->constant = 0;
      auto node = std::make_shared<PExpr>();
      node->kind = PExpr::Kind::kArith;
      node->op = '-';
      node->lhs = std::move(zero);
      node->rhs = std::move(inner);
      return node;
    }
    const PToken& t = Peek();
    if (t.kind == PToken::Kind::kNumber) {
      auto node = std::make_shared<PExpr>();
      node->kind = PExpr::Kind::kConst;
      node->constant = Advance().number;
      return node;
    }
    if (t.kind == PToken::Kind::kIdent) {
      if (MatchIdent("S")) {
        auto node = std::make_shared<PExpr>();
        node->kind = PExpr::Kind::kSeries;
        return node;
      }
      if (MatchIdent("next") || MatchIdent("prev")) {
        bool forward = EqualsIgnoreCase(tokens_[pos_ - 1].text, "next");
        if (!MatchPunct("(")) {
          return Status::ParseError("expected '(' after next/prev");
        }
        CALDB_ASSIGN_OR_RETURN(PExprPtr inner, ParseAdd());
        if (!MatchPunct(")")) {
          return Status::ParseError("expected ')' after next/prev argument");
        }
        auto node = std::make_shared<PExpr>();
        node->kind = PExpr::Kind::kShift;
        node->shift = forward ? 1 : -1;
        node->lhs = std::move(inner);
        return node;
      }
      return Status::ParseError("unknown pattern identifier '" + t.text + "'");
    }
    return Status::ParseError("expected a pattern term");
  }

  std::vector<PToken> tokens_;
  size_t pos_ = 0;
};

// --- evaluation -------------------------------------------------------------

// Numeric evaluation; nullopt when a series reference falls outside the
// observations.
std::optional<double> EvalNumeric(const PExpr& e, const std::vector<double>& values,
                                  int64_t index) {
  switch (e.kind) {
    case PExpr::Kind::kSeries:
      if (index < 0 || index >= static_cast<int64_t>(values.size())) {
        return std::nullopt;
      }
      return values[static_cast<size_t>(index)];
    case PExpr::Kind::kConst:
      return e.constant;
    case PExpr::Kind::kShift:
      return EvalNumeric(*e.lhs, values, index + e.shift);
    case PExpr::Kind::kArith: {
      std::optional<double> a = EvalNumeric(*e.lhs, values, index);
      std::optional<double> b = EvalNumeric(*e.rhs, values, index);
      if (!a || !b) return std::nullopt;
      switch (e.op) {
        case '+':
          return *a + *b;
        case '-':
          return *a - *b;
        case '*':
          return *a * *b;
        case '/':
          if (*b == 0) return std::nullopt;
          return *a / *b;
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;  // boolean node in numeric position
  }
}

bool EvalBool(const PExpr& e, const std::vector<double>& values, int64_t index) {
  switch (e.kind) {
    case PExpr::Kind::kCompare: {
      std::optional<double> a = EvalNumeric(*e.lhs, values, index);
      std::optional<double> b = EvalNumeric(*e.rhs, values, index);
      if (!a || !b) return false;
      switch (e.op) {
        case '<':
          return *a < *b;
        case 'L':
          return *a <= *b;
        case '>':
          return *a > *b;
        case 'G':
          return *a >= *b;
        case '=':
          return *a == *b;
        case '!':
          return *a != *b;
      }
      return false;
    }
    case PExpr::Kind::kLogic:
      if (e.logic_and) {
        return EvalBool(*e.lhs, values, index) && EvalBool(*e.rhs, values, index);
      }
      return EvalBool(*e.lhs, values, index) || EvalBool(*e.rhs, values, index);
    case PExpr::Kind::kNot:
      return !EvalBool(*e.lhs, values, index);
    default:
      return false;  // a bare numeric expression is not a predicate
  }
}

Status ValidateIsPredicate(const PExpr& e) {
  switch (e.kind) {
    case PExpr::Kind::kCompare:
    case PExpr::Kind::kNot:
    case PExpr::Kind::kLogic:
      return Status::OK();
    default:
      return Status::ParseError(
          "pattern must be a predicate (use a comparison, e.g. S < next(S))");
  }
}

}  // namespace

Result<std::vector<size_t>> MatchPatternIndices(const std::vector<double>& values,
                                                std::string_view pattern) {
  CALDB_ASSIGN_OR_RETURN(std::vector<PToken> tokens, PLex(pattern));
  CALDB_ASSIGN_OR_RETURN(PExprPtr expr, PatternParser(std::move(tokens)).Parse());
  CALDB_RETURN_IF_ERROR(ValidateIsPredicate(*expr));
  std::vector<size_t> matches;
  for (size_t i = 0; i < values.size(); ++i) {
    if (EvalBool(*expr, values, static_cast<int64_t>(i))) matches.push_back(i);
  }
  return matches;
}

Result<Calendar> MatchPattern(const RegularTimeSeries& series,
                              std::string_view pattern) {
  std::vector<double> values;
  values.reserve(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    CALDB_ASSIGN_OR_RETURN(double v, series.ValueAt(i));
    values.push_back(v);
  }
  CALDB_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                         MatchPatternIndices(values, pattern));
  std::vector<Interval> days;
  days.reserve(indices.size());
  for (size_t i : indices) {
    CALDB_ASSIGN_OR_RETURN(TimePoint day, series.DayAt(i));
    days.push_back(PointInterval(day));
  }
  return Calendar::Order1(Granularity::kDays, std::move(days));
}

Result<Calendar> MatchPattern(const IrregularTimeSeries& series,
                              std::string_view pattern) {
  std::vector<double> values;
  values.reserve(series.size());
  for (const auto& [day, value] : series.points()) values.push_back(value);
  CALDB_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                         MatchPatternIndices(values, pattern));
  std::vector<Interval> days;
  for (size_t i : indices) {
    days.push_back(PointInterval(series.points()[i].first));
  }
  return Calendar::Order1(Granularity::kDays, std::move(days));
}

}  // namespace caldb
