#include "timeseries/time_series.h"

#include "common/macros.h"
#include "core/generate.h"

namespace caldb {

RegularTimeSeries::RegularTimeSeries(const CalendarCatalog* catalog,
                                     std::string calendar_name,
                                     TimePoint anchor_day)
    : catalog_(catalog),
      calendar_name_(std::move(calendar_name)),
      anchor_day_(anchor_day) {}

Status RegularTimeSeries::EnsureIntervals(size_t count) const {
  if (intervals_cache_.size() >= count) return Status::OK();
  // Evaluate the calendar over growing windows until enough intervals at
  // or after the anchor are available.
  for (int64_t span_days = 512;; span_days *= 4) {
    EvalOptions opts;
    opts.window_days = Interval{anchor_day_, PointAdd(anchor_day_, span_days)};
    CALDB_ASSIGN_OR_RETURN(Calendar cal,
                           catalog_->EvaluateCalendar(calendar_name_, opts));
    // Flattened() is a zero-copy view whenever the shared leaf buffer is
    // already sorted (true for every evaluated calendar in practice).
    Calendar flat = cal.Flattened();
    std::vector<Interval> days;
    for (const Interval& i : flat.intervals()) {
      CALDB_ASSIGN_OR_RETURN(
          Interval d, IntervalToDays(catalog_->time_system(),
                                     flat.granularity(), i));
      if (d.hi < anchor_day_) continue;
      days.push_back(d);
    }
    if (days.size() >= count) {
      intervals_cache_ = std::move(days);
      return Status::OK();
    }
    if (span_days > 400 * 400) {
      return Status::EvalError("calendar '" + calendar_name_ +
                               "' yields too few intervals after day " +
                               std::to_string(anchor_day_));
    }
  }
}

Result<double> RegularTimeSeries::ValueAt(size_t i) const {
  if (i >= values_.size()) {
    return Status::OutOfRange("observation " + std::to_string(i) +
                              " out of range (size " +
                              std::to_string(values_.size()) + ")");
  }
  return values_[i];
}

Result<Interval> RegularTimeSeries::IntervalAt(size_t i) const {
  CALDB_RETURN_IF_ERROR(EnsureIntervals(i + 1));
  return intervals_cache_[i];
}

Result<TimePoint> RegularTimeSeries::DayAt(size_t i) const {
  CALDB_ASSIGN_OR_RETURN(Interval interval, IntervalAt(i));
  return interval.hi;
}

Result<std::vector<std::pair<TimePoint, double>>>
RegularTimeSeries::Materialize() const {
  CALDB_RETURN_IF_ERROR(EnsureIntervals(values_.size()));
  std::vector<std::pair<TimePoint, double>> out;
  out.reserve(values_.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    out.emplace_back(intervals_cache_[i].hi, values_[i]);
  }
  return out;
}

Result<std::optional<double>> RegularTimeSeries::ValueOn(TimePoint day) const {
  CALDB_RETURN_IF_ERROR(EnsureIntervals(values_.size()));
  for (size_t i = 0; i < values_.size(); ++i) {
    if (intervals_cache_[i].Contains(day)) return std::optional<double>(values_[i]);
  }
  return std::optional<double>(std::nullopt);
}

Result<std::vector<std::pair<TimePoint, double>>> RegularTimeSeries::Slice(
    const Interval& window) const {
  CALDB_ASSIGN_OR_RETURN(auto all, Materialize());
  std::vector<std::pair<TimePoint, double>> out;
  for (const auto& [day, value] : all) {
    if (window.Contains(day)) out.emplace_back(day, value);
  }
  return out;
}

Status IrregularTimeSeries::Append(TimePoint day, double value) {
  if (!IsValidPoint(day)) {
    return Status::InvalidArgument("0 is not a valid time point");
  }
  if (!points_.empty() && day <= points_.back().first) {
    return Status::InvalidArgument("observation days must strictly increase");
  }
  points_.emplace_back(day, value);
  return Status::OK();
}

Result<std::optional<double>> IrregularTimeSeries::ValueOn(TimePoint day) const {
  for (const auto& [d, v] : points_) {
    if (d == day) return std::optional<double>(v);
    if (d > day) break;
  }
  return std::optional<double>(std::nullopt);
}

Calendar IrregularTimeSeries::AsCalendar() const {
  std::vector<Interval> intervals;
  intervals.reserve(points_.size());
  for (const auto& [d, v] : points_) intervals.push_back(PointInterval(d));
  return Calendar::Order1(Granularity::kDays, std::move(intervals));
}

}  // namespace caldb
