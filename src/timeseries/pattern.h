// Pattern selection predicates over time series — the paper's future-work
// item (a) in §6:
//
//   "Retrieve the time points at which the end-of-day closing prices for
//    two successive days showed an increase.  The selection predicate in
//    this case takes the form of a pattern: {S_t < Next(S_t)}."
//
// The pattern language:  S refers to the value at the current observation;
// next(e) / prev(e) shift every series reference in e by +-1; numeric
// literals, + - * /, comparisons (< <= > >= = !=) and and/or/not compose.
// A pattern matches at observation t when it evaluates to true; references
// outside the series make the comparison false.

#ifndef CALDB_TIMESERIES_PATTERN_H_
#define CALDB_TIMESERIES_PATTERN_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/calendar.h"
#include "timeseries/time_series.h"

namespace caldb {

/// Indices of observations in `values` where the pattern holds.
Result<std::vector<size_t>> MatchPatternIndices(const std::vector<double>& values,
                                                std::string_view pattern);

/// Day points (an order-1 DAYS calendar) of the matching observations of a
/// calendar-bound series.
Result<Calendar> MatchPattern(const RegularTimeSeries& series,
                              std::string_view pattern);

/// Day points of the matching observations of an explicit series.
Result<Calendar> MatchPattern(const IrregularTimeSeries& series,
                              std::string_view pattern);

}  // namespace caldb

#endif  // CALDB_TIMESERIES_PATTERN_H_
