// Clocks for the temporal-rule system.  Rule triggering semantics depend
// on the order and granule of firings, not on wall-clock seconds, so the
// reproduction drives DBCRON from a virtual clock whose points are
// granules of the rule system's unit (DAYS by default, HOURS for
// process-control rules); a system-backed day clock is provided for
// completeness.

#ifndef CALDB_RULES_CLOCK_H_
#define CALDB_RULES_CLOCK_H_

#include <atomic>
#include <chrono>

#include "time/time_system.h"
#include "time/timepoint.h"

namespace caldb {

class Clock {
 public:
  virtual ~Clock() = default;
  /// The current DAYS point.
  virtual TimePoint NowDay() const = 0;
};

/// A manually advanced clock.  Time never goes backwards.
///
/// `now_` is atomic so concurrent sessions can read the clock while the
/// DBCRON thread advances it (caldb::Engine).  Advancing itself is
/// single-writer: only DBCRON (or a single-threaded driver) moves time.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(TimePoint start_day = 1) : now_(start_day) {}

  TimePoint NowDay() const override {
    return now_.load(std::memory_order_acquire);
  }

  /// Moves to `day` (no-op when `day` is in the past).
  void AdvanceTo(TimePoint day) {
    if (day > NowDay()) now_.store(day, std::memory_order_release);
  }

  /// Moves forward by `days` granules.
  void Tick(int64_t days = 1) {
    now_.store(PointAdd(NowDay(), days), std::memory_order_release);
  }

 private:
  std::atomic<TimePoint> now_;
};

/// Reads the OS clock and converts to a day point of `time_system`.
class SystemClock : public Clock {
 public:
  explicit SystemClock(const TimeSystem* time_system)
      : time_system_(time_system) {}

  TimePoint NowDay() const override {
    auto now = std::chrono::system_clock::now();
    int64_t days_since_epoch_1970 =
        std::chrono::duration_cast<std::chrono::hours>(now.time_since_epoch())
            .count() /
        24;
    CivilDate civil = CivilFromDays(days_since_epoch_1970);
    return time_system_->DayPointFromCivil(civil);
  }

 private:
  const TimeSystem* time_system_;
};

}  // namespace caldb

#endif  // CALDB_RULES_CLOCK_H_
