#include "rules/temporal_rules.h"

#include "common/macros.h"
#include "obs/obs.h"

namespace caldb {

namespace {
constexpr char kRuleInfoTable[] = "RULE_INFO";
constexpr char kRuleTimeTable[] = "RULE_TIME";

// Compiles the action command and condition query of a rule being
// declared or restored, filling the rule's handles.  Fail-fast contract:
// an action or condition that does not parse (or a condition that is not
// a retrieve) is an error at declaration time, never at first firing.
//
// Either statement may reference $1 — FireRule binds it to the firing day
// (the parameterized sibling of the fire_day() function, and the path a
// bind-at-execute client would take).  Higher placeholders are rejected
// here: a firing supplies exactly one value.
Status CheckRuleParams(const std::string& name, const char* part,
                       const CompiledStatement& compiled) {
  if (compiled.param_count > 1) {
    return Status::InvalidArgument(
        "temporal rule '" + name + "' " + part + " uses " +
        RenderParamSignature(compiled) +
        ": rule statements may use at most $1, which is bound to the firing "
        "day");
  }
  return Status::OK();
}

Status CompileRuleStatements(const std::string& name, TemporalRule* rule) {
  if (!rule->action.command.empty()) {
    Result<CompiledStatementPtr> command =
        CompileStatement(rule->action.command);
    if (!command.ok()) {
      return command.status().WithContext("temporal rule '" + name +
                                          "' action does not parse");
    }
    CALDB_RETURN_IF_ERROR(CheckRuleParams(name, "action", **command));
    rule->compiled_command = *std::move(command);
  }
  if (!rule->condition_query.empty()) {
    Result<CompiledStatementPtr> condition =
        CompileStatement(rule->condition_query);
    if (!condition.ok()) {
      return condition.status().WithContext("temporal rule '" + name +
                                            "' condition does not parse");
    }
    if (!std::holds_alternative<RetrieveStmt>(*(*condition)->stmt)) {
      return Status::InvalidArgument("temporal rule '" + name +
                                     "' condition must be a retrieve");
    }
    CALDB_RETURN_IF_ERROR(CheckRuleParams(name, "condition", **condition));
    rule->compiled_condition = *std::move(condition);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<TemporalRuleManager>> TemporalRuleManager::Create(
    const CalendarCatalog* catalog, Database* db, TimePoint horizon,
    Granularity unit) {
  auto manager = std::unique_ptr<TemporalRuleManager>(
      new TemporalRuleManager(catalog, db, horizon, unit));
  if (!db->HasTable(kRuleInfoTable)) {
    CALDB_ASSIGN_OR_RETURN(
        Schema info_schema,
        Schema::Make({{"rule_id", ValueType::kInt},
                      {"name", ValueType::kText},
                      {"expression", ValueType::kText},
                      {"declared_at", ValueType::kInt}}));
    CALDB_RETURN_IF_ERROR(db->CreateTable(kRuleInfoTable, std::move(info_schema)));
  }
  if (!db->HasTable(kRuleTimeTable)) {
    CALDB_ASSIGN_OR_RETURN(Schema time_schema,
                           Schema::Make({{"rule_id", ValueType::kInt},
                                         {"next_fire", ValueType::kInt}}));
    CALDB_RETURN_IF_ERROR(db->CreateTable(kRuleTimeTable, std::move(time_schema)));
    CALDB_ASSIGN_OR_RETURN(Table * time_table, db->GetTable(kRuleTimeTable));
    CALDB_RETURN_IF_ERROR(time_table->CreateIndex("next_fire"));
  }
  // The action-command escape hatch: fire_day() reads the day the firing
  // rule triggered at.
  TemporalRuleManager* raw = manager.get();
  if (!db->registry().Contains("fire_day")) {
    CALDB_RETURN_IF_ERROR(db->registry().Register(
        "fire_day", 0, 0, [raw](const std::vector<Value>&) -> Result<Value> {
          return Value::Int(raw->current_fire_day_);
        }));
  }
  return manager;
}

Result<int64_t> TemporalRuleManager::DeclareRule(
    const std::string& name, const std::string& expression,
    TemporalAction action, TimePoint now_day,
    const std::string& condition_query) {
  if (name.empty()) {
    return Status::InvalidArgument("rule name must not be empty");
  }
  for (const auto& [id, rule] : rules_) {
    if (rule.name == name) {
      return Status::AlreadyExists("temporal rule '" + name + "' already exists");
    }
  }
  if (!action.callback && action.command.empty()) {
    return Status::InvalidArgument("temporal rule '" + name + "' has no action");
  }
  // Parse the calendar expression with the §3.4 algorithm (inlining,
  // factorization, planning).
  Result<Plan> plan = catalog_->CompileScriptText(expression);
  if (!plan.ok()) {
    return plan.status().WithContext("declaring temporal rule '" + name + "'");
  }

  TemporalRule rule;
  rule.name = name;
  rule.expression = expression;
  rule.plan = std::make_shared<const Plan>(std::move(plan).value());
  rule.action = std::move(action);
  rule.condition_query = condition_query;
  // Compile the action and condition once, here — declaration rejects
  // text that cannot parse, and firings execute the handles.
  CALDB_RETURN_IF_ERROR(CompileRuleStatements(name, &rule));
  rule.id = next_id_++;

  // First firing strictly after `now_day`.
  CALDB_ASSIGN_OR_RETURN(
      std::optional<TimePoint> first_fire,
      catalog_->NextFirePointForPlan(*rule.plan, now_day, horizon_day_, unit_));

  // Durable rows.
  CALDB_ASSIGN_OR_RETURN(Table * info, db_->GetTable(kRuleInfoTable));
  CALDB_RETURN_IF_ERROR(info->Insert({Value::Int(rule.id), Value::Text(name),
                                      Value::Text(expression),
                                      Value::Int(now_day)})
                            .status());
  CALDB_ASSIGN_OR_RETURN(Table * time_table, db_->GetTable(kRuleTimeTable));
  if (first_fire.has_value()) {
    CALDB_RETURN_IF_ERROR(
        time_table->Insert({Value::Int(rule.id), Value::Int(*first_fire)})
            .status());
  }
  int64_t id = rule.id;
  rules_[id] = std::move(rule);
  return id;
}

Status TemporalRuleManager::DropRule(const std::string& name) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->second.name != name) continue;
    int64_t id = it->first;
    rules_.erase(it);
    // Remove catalog rows.
    CALDB_ASSIGN_OR_RETURN(Table * info, db_->GetTable(kRuleInfoTable));
    std::vector<RowId> dead;
    info->Scan([&](RowId row_id, const Row& row) {
      if (row[0].AsInt().value_or(-1) == id) dead.push_back(row_id);
      return true;
    });
    for (RowId row_id : dead) CALDB_RETURN_IF_ERROR(info->Delete(row_id));
    CALDB_RETURN_IF_ERROR(UpdateRuleTime(id, std::nullopt));
    return Status::OK();
  }
  return Status::NotFound("no temporal rule named '" + name + "'");
}

Status TemporalRuleManager::RestoreRule(int64_t id, const std::string& name,
                                        const std::string& expression,
                                        TemporalAction action,
                                        const std::string& condition_query) {
  if (rules_.count(id) > 0) {
    return Status::AlreadyExists("temporal rule id " + std::to_string(id) +
                                 " already restored");
  }
  Result<Plan> plan = catalog_->CompileScriptText(expression);
  if (!plan.ok()) {
    return plan.status().WithContext("restoring temporal rule '" + name + "'");
  }
  TemporalRule rule;
  rule.id = id;
  rule.name = name;
  rule.expression = expression;
  rule.plan = std::make_shared<const Plan>(std::move(plan).value());
  rule.action = std::move(action);
  rule.condition_query = condition_query;
  CALDB_RETURN_IF_ERROR(CompileRuleStatements(name, &rule));
  rules_[id] = std::move(rule);
  SetNextId(id + 1);
  return Status::OK();
}

std::vector<std::string> TemporalRuleManager::ListRules() const {
  std::vector<std::string> names;
  names.reserve(rules_.size());
  for (const auto& [id, rule] : rules_) names.push_back(rule.name);
  return names;
}

std::vector<TemporalRule> TemporalRuleManager::ListRuleDefs() const {
  std::vector<TemporalRule> defs;
  defs.reserve(rules_.size());
  for (const auto& [id, rule] : rules_) defs.push_back(rule);
  return defs;
}

Result<TemporalRule> TemporalRuleManager::GetRule(int64_t id) const {
  auto it = rules_.find(id);
  if (it == rules_.end()) {
    return Status::NotFound("no temporal rule with id " + std::to_string(id));
  }
  return it->second;
}

Result<TemporalRule> TemporalRuleManager::GetRuleByName(
    const std::string& name) const {
  for (const auto& [id, rule] : rules_) {
    if (rule.name == name) return rule;
  }
  return Status::NotFound("no temporal rule named '" + name + "'");
}

Result<std::vector<std::pair<TimePoint, int64_t>>>
TemporalRuleManager::DueBetween(TimePoint lo, TimePoint hi) const {
  CALDB_ASSIGN_OR_RETURN(const Table* time_table, static_cast<const Database*>(db_)->GetTable(kRuleTimeTable));
  std::vector<std::pair<TimePoint, int64_t>> due;
  CALDB_RETURN_IF_ERROR(time_table->IndexScan(
      "next_fire", lo, hi, [&](RowId, const Row& row) {
        due.emplace_back(row[1].AsInt().value(), row[0].AsInt().value());
        return true;
      }));
  return due;
}

Status TemporalRuleManager::UpdateRuleTime(int64_t id,
                                           std::optional<TimePoint> next_fire) {
  CALDB_ASSIGN_OR_RETURN(Table * time_table, db_->GetTable(kRuleTimeTable));
  std::vector<RowId> existing;
  time_table->Scan([&](RowId row_id, const Row& row) {
    if (row[0].AsInt().value_or(-1) == id) existing.push_back(row_id);
    return true;
  });
  for (RowId row_id : existing) {
    CALDB_RETURN_IF_ERROR(time_table->Delete(row_id));
  }
  if (next_fire.has_value()) {
    CALDB_RETURN_IF_ERROR(
        time_table->Insert({Value::Int(id), Value::Int(*next_fire)}).status());
  }
  return Status::OK();
}

Result<std::optional<TimePoint>> TemporalRuleManager::FireRule(
    int64_t id, TimePoint fire_day, FireOutcome* outcome) {
  const int64_t start_ns = obs::NowNs();
  // Every exit path funnels through `fail`/success so `outcome` is always
  // complete — DBCRON turns it into the audit record either way.
  auto finish = [&](Status st) -> Status {
    if (outcome != nullptr) {
      outcome->status = st;
      outcome->duration_ns = obs::NowNs() - start_ns;
    }
    return st;
  };
  auto it = rules_.find(id);
  if (it == rules_.end()) {
    return finish(
        Status::NotFound("no temporal rule with id " + std::to_string(id)));
  }
  TemporalRule& rule = it->second;
  if (outcome != nullptr) outcome->rule_name = rule.name;
  current_fire_day_ = fire_day;
  // The firing day, bound to $1 of any rule statement that declares it.
  // Binding (not text splicing) keeps one compiled shape per rule across
  // every firing — and the same bind list replays from the WAL.
  const ParamList fire_params = {Value::Int(fire_day)};
  auto run = [&](const CompiledStatement& stmt) -> Result<QueryResult> {
    if (stmt.param_count == 1) {
      return db_->ExecuteCompiled(stmt, fire_params);
    }
    return db_->ExecuteCompiled(stmt);
  };
  bool condition_holds = true;
  if (rule.compiled_condition != nullptr) {
    // The pre-compiled condition (DeclareRule): firings never parse.
    Result<QueryResult> cond = run(*rule.compiled_condition);
    if (!cond.ok()) {
      return finish(cond.status().WithContext("temporal rule " + rule.name +
                                            " condition"));
    }
    condition_holds = !cond->rows.empty();
  }
  if (condition_holds) {
    ++fire_stats_.fired;
    if (rule.action.callback) {
      Status st = rule.action.callback(fire_day);
      if (!st.ok()) {
        return finish(st.WithContext("temporal rule " + rule.name));
      }
    }
    if (rule.compiled_command != nullptr) {
      Result<QueryResult> r = run(*rule.compiled_command);
      if (!r.ok()) {
        return finish(r.status().WithContext("temporal rule " + rule.name +
                                           " action"));
      }
    }
  } else {
    ++fire_stats_.suppressed_by_condition;
    if (outcome != nullptr) outcome->suppressed = true;
  }
  Result<std::optional<TimePoint>> next =
      catalog_->NextFirePointForPlan(*rule.plan, fire_day, horizon_day_, unit_);
  if (!next.ok()) return finish(next.status());
  Status st = UpdateRuleTime(id, *next);
  if (!st.ok()) return finish(st);
  finish(Status::OK());
  return *next;
}

}  // namespace caldb
