// DBCRON (§4, Figure 4): the daemon that triggers temporal rules.
//
//   "RULE-TIME is probed by a daemon process, DBCRON, every T units of
//    time to determine the temporal rules that trigger in the next T time
//    units.  DBCRON creates a main memory data structure that stores this
//    information and is responsible for triggering rules at appropriate
//    time points.  It is modeled on the UNIX utility, CRON."
//
// The reproduction drives DBCRON from a virtual clock: AdvanceTo(day)
// plays time forward, probing RULE-TIME every `probe_period` days (via
// the B+tree index on next_fire) and firing due rules in time order from
// a min-heap.
//
// Direct construction is deprecated for concurrent use: DbCron itself is
// single-threaded, and running it next to live sessions needs the
// serialization caldb::Engine provides (engine/engine.h) — the Engine
// owns a DbCron, runs it on a background thread, and fires rules under
// the exclusive database lock.  Construct one directly only in
// single-threaded library code and tests (Engine::AdvanceTo is the
// server-side entry point).

#ifndef CALDB_RULES_DBCRON_H_
#define CALDB_RULES_DBCRON_H_

#include <queue>
#include <vector>

#include "rules/clock.h"
#include "rules/temporal_rules.h"

namespace caldb {

class DbCron {
 public:
  /// `rules` and `clock` must outlive the daemon.  `probe_period_days` is
  /// the paper's T.
  DbCron(TemporalRuleManager* rules, VirtualClock* clock,
         int64_t probe_period_days = 7);

  /// Plays virtual time forward to `day` inclusive, probing and firing as
  /// time passes.  Rules becoming due are fired in (fire_day, rule_id)
  /// order; a rule declared mid-window is picked up at the next probe.
  Status AdvanceTo(TimePoint day);

  /// Convenience: advance by `days`.
  Status Advance(int64_t days) {
    return AdvanceTo(PointAdd(clock_->NowDay(), days));
  }

  int64_t probe_period_days() const { return probe_period_days_; }

  struct CronStats {
    int64_t probes = 0;
    int64_t fires = 0;
    int64_t max_heap_size = 0;
  };
  const CronStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CronStats{}; }

 private:
  // Probes RULE-TIME for rules due in [now, now + T) and loads them into
  // the in-memory heap.
  Status Probe(TimePoint now);

  using HeapEntry = std::pair<TimePoint, int64_t>;  // (fire_day, rule_id)

  TemporalRuleManager* rules_;
  VirtualClock* clock_;
  int64_t probe_period_days_;
  TimePoint next_probe_day_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  CronStats stats_;
};

}  // namespace caldb

#endif  // CALDB_RULES_DBCRON_H_
