#include "rules/dbcron.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "obs/obs.h"

namespace caldb {

namespace {

struct CronMetrics {
  obs::Counter* probes = obs::Metrics().counter("caldb.cron.probes");
  obs::Counter* fires = obs::Metrics().counter("caldb.cron.fires");
  obs::Gauge* heap_depth = obs::Metrics().gauge("caldb.cron.heap_depth");
  obs::Histogram* probe_ns = obs::Metrics().histogram("caldb.cron.probe_ns");
};

CronMetrics& Metrics() {
  static CronMetrics* m = new CronMetrics();
  return *m;
}

}  // namespace

DbCron::DbCron(TemporalRuleManager* rules, VirtualClock* clock,
               int64_t probe_period_days)
    : rules_(rules),
      clock_(clock),
      probe_period_days_(std::max<int64_t>(1, probe_period_days)),
      next_probe_day_(clock->NowDay()) {}

Status DbCron::Probe(TimePoint now) {
  ++stats_.probes;
  Metrics().probes->Increment();
  obs::ScopedLatency latency(Metrics().probe_ns);
  obs::Tracer::Span span = obs::StartSpan("cron.probe");
  const TimePoint window_end = PointAdd(now, probe_period_days_ - 1);
  // Scan from the beginning of time, not from `now`: a rule declared after
  // the previous probe may have its first firing inside the already-probed
  // window.  Such overdue entries fire late, with their original firing
  // day, like cron catching up.  RULE-TIME normally holds only future
  // points, so this costs nothing extra on the index.
  CALDB_ASSIGN_OR_RETURN(auto due,
                         rules_->DueBetween(INT64_MIN + 1, window_end));
  // The heap may already hold entries for this window (e.g. a rule fired
  // earlier in the window and its next firing landed inside it again);
  // avoid duplicates.
  std::set<HeapEntry> pending;
  {
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> copy =
        heap_;
    while (!copy.empty()) {
      pending.insert(copy.top());
      copy.pop();
    }
  }
  for (const auto& entry : due) {
    if (pending.count(entry) == 0) heap_.push(entry);
  }
  stats_.max_heap_size = std::max<int64_t>(
      stats_.max_heap_size, static_cast<int64_t>(heap_.size()));
  Metrics().heap_depth->Set(static_cast<int64_t>(heap_.size()));
  return Status::OK();
}

Status DbCron::AdvanceTo(TimePoint day) {
  TimePoint now = clock_->NowDay();
  if (day < now) return Status::OK();
  while (true) {
    // Next event: the earliest of (scheduled probe, earliest heap firing).
    TimePoint next_event = next_probe_day_;
    bool is_fire = false;
    if (!heap_.empty() && heap_.top().first <= next_event) {
      next_event = heap_.top().first;
      is_fire = true;
    }
    if (next_event > day) break;

    clock_->AdvanceTo(next_event);
    now = next_event;

    if (is_fire) {
      HeapEntry entry = heap_.top();
      heap_.pop();
      Metrics().heap_depth->Set(static_cast<int64_t>(heap_.size()));
      ++stats_.fires;
      Metrics().fires->Increment();
      // The clock clamps backwards moves, so for an overdue entry (rule
      // declared after its window was probed) NowDay() exceeds the
      // scheduled day — the catch-up lag the audit trail surfaces.
      const TimePoint clock_day = clock_->NowDay();
      TemporalRuleManager::FireOutcome fired;
      Result<std::optional<TimePoint>> next = [&] {
        obs::Tracer::Span span = obs::StartSpan("cron.fire");
        span.AddAttr("rule_id", std::to_string(entry.second));
        span.AddAttr("scheduled_day", std::to_string(entry.first));
        span.AddAttr("fired_day", std::to_string(clock_day));
        Result<std::optional<TimePoint>> r =
            rules_->FireRule(entry.second, entry.first, &fired);
        if (!fired.rule_name.empty()) span.AddAttr("rule", fired.rule_name);
        return r;
      }();
      // A dropped rule may still sit in the heap (FireRule -> NotFound
      // before the name lookup filled `fired.rule_name`): nothing was
      // actually fired, so no audit record either.
      if (!fired.rule_name.empty()) {
        obs::AuditRecord record;
        record.source = obs::AuditRecord::Source::kDbCron;
        record.rule = fired.rule_name;
        record.rule_id = entry.second;
        record.scheduled_day = entry.first;
        record.fired_day = clock_day;
        record.duration_ns = fired.duration_ns;
        record.trigger = "dbcron";
        if (!fired.status.ok()) {
          record.outcome = obs::AuditRecord::Outcome::kError;
          record.error = fired.status.ToString();
        } else if (fired.suppressed) {
          record.outcome = obs::AuditRecord::Outcome::kSuppressed;
        }
        obs::Audit().Record(std::move(record));
      }
      if (!next.ok() && next.status().code() != StatusCode::kNotFound) {
        return next.status();
      }
      // If the rule's next firing lands inside the already probed window,
      // schedule it directly (RULE-TIME was updated, but this window's
      // probe has passed).
      if (next.ok() && next->has_value() && **next < next_probe_day_) {
        heap_.push(HeapEntry{**next, entry.second});
        stats_.max_heap_size = std::max<int64_t>(
            stats_.max_heap_size, static_cast<int64_t>(heap_.size()));
        Metrics().heap_depth->Set(static_cast<int64_t>(heap_.size()));
      }
    } else {
      CALDB_RETURN_IF_ERROR(Probe(now));
      next_probe_day_ = PointAdd(now, probe_period_days_);
    }
  }
  clock_->AdvanceTo(day);
  return Status::OK();
}

}  // namespace caldb
