// Time-based rules (§4): "On Calendar-Expression do Action".
//
// When a temporal rule is declared it is parsed by the calendar-expression
// parsing algorithm; the expression, parse tree and evaluation plan are
// stored in the table RULE-INFO, and the next time point at which the rule
// should trigger is evaluated and stored in RULE-TIME (indexed on the
// firing point).  DBCRON (see dbcron.h) probes RULE-TIME every T time
// units — exactly the structure of the paper's Figure 4.

#ifndef CALDB_RULES_TEMPORAL_RULES_H_
#define CALDB_RULES_TEMPORAL_RULES_H_

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/calendar_catalog.h"
#include "db/database.h"

namespace caldb {

/// What a temporal rule does when it fires.  Either (or both) of:
///  - `command`: a query-language statement executed against the database.
///    The firing day is available two ways: the registered fire_day()
///    function, or a $1 placeholder bound to it at each firing (at most
///    $1 — higher placeholders are rejected at declaration).  The
///    condition query may use either form too.
///  - `callback`: a C++ function receiving the fire day.
struct TemporalAction {
  std::string command;
  std::function<Status(TimePoint fire_day)> callback;
};

/// A declared rule, as held in memory (RULE-INFO keeps the durable part).
/// Both halves of the rule are compiled at declaration time: the calendar
/// expression into its eval-plan, and the action command / condition
/// query into CompiledStatement handles — DBCRON firings never parse.
struct TemporalRule {
  int64_t id = 0;
  std::string name;
  std::string expression;            // calendar-expression text
  std::shared_ptr<const Plan> plan;  // compiled eval-plan
  TemporalAction action;
  /// action.command compiled once at DeclareRule/RestoreRule (null for
  /// callback-only actions).
  CompiledStatementPtr compiled_command;
  // Optional database Condition (the paper's §6b future work): a retrieve
  // statement evaluated at firing time; the action runs only when it
  // returns at least one row.  The next firing is scheduled either way.
  std::string condition_query;
  CompiledStatementPtr compiled_condition;  // null when no condition
};

class TemporalRuleManager {
 public:
  /// `catalog` and `db` must outlive the manager.  Creates the RULE-INFO
  /// and RULE-TIME tables in `db` (with a B+tree index on the firing
  /// point) and registers the fire_day() function.
  ///
  /// `unit` is the granularity of rule time points: DAYS for the paper's
  /// examples, HOURS (or finer) for process-control rules.  All points
  /// passed to and returned from this manager — and the virtual clock
  /// driving its DBCRON — are granules of that unit.  `horizon` is in the
  /// same unit.
  static Result<std::unique_ptr<TemporalRuleManager>> Create(
      const CalendarCatalog* catalog, Database* db, TimePoint horizon = 20000,
      Granularity unit = Granularity::kDays);

  Granularity unit() const { return unit_; }

  /// Declares "On <expression> [where <condition>] do <action>".  Compiles
  /// the expression, inserts the RULE-INFO row, computes the first firing
  /// strictly after `now_day` and inserts the RULE-TIME row.
  /// `condition_query`, when nonempty, is a retrieve statement gating the
  /// action (it may call fire_day()).
  Result<int64_t> DeclareRule(const std::string& name,
                              const std::string& expression,
                              TemporalAction action, TimePoint now_day,
                              const std::string& condition_query = "");

  struct FireStats {
    int64_t fired = 0;
    int64_t suppressed_by_condition = 0;
  };
  const FireStats& fire_stats() const { return fire_stats_; }

  Status DropRule(const std::string& name);

  /// Recovery entry point (src/storage/): rebuilds one rule's in-memory
  /// state — compiles the expression, keeps the given id — WITHOUT writing
  /// RULE-INFO/RULE-TIME rows (those restore with the table snapshot).
  /// Bumps the id counter past `id`.
  Status RestoreRule(int64_t id, const std::string& name,
                     const std::string& expression, TemporalAction action,
                     const std::string& condition_query);

  /// The id the next DeclareRule will assign.  Snapshotted and restored
  /// (SetNextId) so ids stay stable across recovery.
  int64_t next_id() const { return next_id_; }
  void SetNextId(int64_t next_id) { next_id_ = std::max(next_id_, next_id); }

  std::vector<std::string> ListRules() const;

  /// Full definitions of every rule, ordered by id (the snapshot writer
  /// serializes them; callback actions are not serializable).
  std::vector<TemporalRule> ListRuleDefs() const;

  Result<TemporalRule> GetRule(int64_t id) const;
  Result<TemporalRule> GetRuleByName(const std::string& name) const;

  /// Rules with next-fire day in [lo, hi], as (fire_day, rule_id) —
  /// the probe query DBCRON issues against RULE-TIME (uses the index).
  Result<std::vector<std::pair<TimePoint, int64_t>>> DueBetween(
      TimePoint lo, TimePoint hi) const;

  /// What one firing did — filled for the caller (DBCRON) to turn into an
  /// audit record, whether the firing succeeded or not.
  struct FireOutcome {
    std::string rule_name;
    bool suppressed = false;  // condition evaluated false; action skipped
    Status status;            // condition/action/reschedule error, if any
    int64_t duration_ns = 0;  // condition + action + reschedule time
  };

  /// Executes the rule's action at `fire_day`, recomputes its next firing
  /// and updates RULE-TIME.  Returns the new next-fire day (nullopt when
  /// the rule went dormant past the horizon).  `outcome`, when non-null,
  /// is filled on every path (including errors).
  Result<std::optional<TimePoint>> FireRule(int64_t id, TimePoint fire_day,
                                            FireOutcome* outcome = nullptr);

  const CalendarCatalog& catalog() const { return *catalog_; }
  TimePoint horizon_day() const { return horizon_day_; }

 private:
  TemporalRuleManager(const CalendarCatalog* catalog, Database* db,
                      TimePoint horizon_day, Granularity unit)
      : catalog_(catalog), db_(db), horizon_day_(horizon_day), unit_(unit) {}

  Status UpdateRuleTime(int64_t id, std::optional<TimePoint> next_fire);

  const CalendarCatalog* catalog_;
  Database* db_;
  TimePoint horizon_day_;
  Granularity unit_ = Granularity::kDays;
  int64_t next_id_ = 1;
  std::map<int64_t, TemporalRule> rules_;
  TimePoint current_fire_day_ = 1;  // exposed via fire_day()
  FireStats fire_stats_;
};

}  // namespace caldb

#endif  // CALDB_RULES_TEMPORAL_RULES_H_
