// User-defined semantics for date arithmetic (§1):
//
//   "the yield calculation on financial bonds uses a calendar that has 30
//    days in every month for date arithmetic, but 365 days in the year for
//    the actual yield calculation.  If date functions supplied by
//    commercial databases are used, results will be incorrect because
//    these date functions always assume the underlying calendar as the
//    gregorian calendar."
//
// Day-count conventions make the underlying calendar an explicit argument
// of date arithmetic.

#ifndef CALDB_FINANCE_DAY_COUNT_H_
#define CALDB_FINANCE_DAY_COUNT_H_

#include "common/result.h"
#include "time/civil.h"

namespace caldb {

enum class DayCount {
  kThirty360,  // 30/360 US (bond basis): every month has 30 days
  kAct365,     // actual days / 365
  kActAct,     // actual days / actual year length (ISDA-style split)
};

std::string_view DayCountName(DayCount convention);

/// Days from `a` to `b` under the convention's *date arithmetic* (for
/// kThirty360 this is the 30-day-months count; for the ACT conventions the
/// real day difference).  Negative when b < a.
Result<int64_t> DayCountDays(DayCount convention, CivilDate a, CivilDate b);

/// Year fraction from `a` to `b` under the convention.
Result<double> YearFraction(DayCount convention, CivilDate a, CivilDate b);

/// Accrued coupon interest from `last_coupon` to `settlement`:
/// face * annual_rate * YearFraction(convention, ...).  The paper's bond
/// example uses kThirty360 for the accrual arithmetic.
Result<double> AccruedInterest(double face, double annual_rate,
                               DayCount convention, CivilDate last_coupon,
                               CivilDate settlement);

/// The paper's mixed-convention yield: coupon income accrued on 30/360
/// date arithmetic, annualized over actual days / 365.
Result<double> SimpleYield(double price, double face, double annual_rate,
                           CivilDate purchase, CivilDate sale);

}  // namespace caldb

#endif  // CALDB_FINANCE_DAY_COUNT_H_
