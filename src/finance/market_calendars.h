// Synthetic market calendars: rule-generated US-style holidays, weekends,
// and business days, built *with the calendar algebra itself*.
//
// Substitution note (see DESIGN.md): the paper's examples consume exchange
// holiday files; this module generates an equivalent synthetic holiday set
// from the standard US federal holiday rules, which exercises the same
// code paths (HOLIDAYS / AM_BUS_DAYS value calendars, business-day
// fallback logic).

#ifndef CALDB_FINANCE_MARKET_CALENDARS_H_
#define CALDB_FINANCE_MARKET_CALENDARS_H_

#include "catalog/calendar_catalog.h"
#include "common/result.h"
#include "core/calendar.h"
#include "time/time_system.h"

namespace caldb {

/// US federal holidays for civil years [first_year, last_year], as an
/// order-1 DAYS calendar.  Rules: New Year (Jan 1), MLK (3rd Mon Jan),
/// Presidents (3rd Mon Feb), Memorial (last Mon May), Independence
/// (Jul 4), Labor (1st Mon Sep), Thanksgiving (4th Thu Nov), Christmas
/// (Dec 25).  Fixed-date holidays falling on Saturday are observed the
/// preceding Friday; on Sunday the following Monday.
Result<Calendar> UsFederalHolidays(const TimeSystem& ts, int32_t first_year,
                                   int32_t last_year);

/// Saturdays and Sundays of the given day window.
Result<Calendar> WeekendDays(const TimeSystem& ts, const Interval& window_days);

/// Business days of the window: all days minus weekends minus `holidays`.
Result<Calendar> BusinessDays(const TimeSystem& ts, const Interval& window_days,
                              const Calendar& holidays);

/// The last business day at or before `day` (searches backwards).
Result<TimePoint> PrecedingBusinessDay(const Calendar& business_days,
                                       TimePoint day);

/// The first business day at or after `day`.
Result<TimePoint> NextBusinessDay(const Calendar& business_days, TimePoint day);

/// Moves `n` business days forward (n > 0) or backward (n < 0) from `day`
/// (which need not itself be a business day).
Result<TimePoint> AddBusinessDays(const Calendar& business_days, TimePoint day,
                                  int64_t n);

/// The option expiration day of (year, month): the 3rd Friday if it is a
/// business day, else the preceding business day — §1's motivating
/// condition.
Result<TimePoint> OptionExpirationDay(const TimeSystem& ts, int32_t year,
                                      int32_t month,
                                      const Calendar& business_days);

/// Installs HOLIDAYS and AM_BUS_DAYS as value calendars covering the given
/// years (names from the paper's scripts).
Status InstallMarketCalendars(CalendarCatalog* catalog, int32_t first_year,
                              int32_t last_year);

}  // namespace caldb

#endif  // CALDB_FINANCE_MARKET_CALENDARS_H_
