#include "finance/day_count.h"

#include <algorithm>

#include "common/macros.h"

namespace caldb {

std::string_view DayCountName(DayCount convention) {
  switch (convention) {
    case DayCount::kThirty360:
      return "30/360";
    case DayCount::kAct365:
      return "ACT/365";
    case DayCount::kActAct:
      return "ACT/ACT";
  }
  return "?";
}

namespace {

Status ValidateDates(CivilDate a, CivilDate b) {
  if (!IsValidCivil(a) || !IsValidCivil(b)) {
    return Status::InvalidArgument("invalid civil date");
  }
  return Status::OK();
}

bool IsLastDayOfFebruary(CivilDate d) {
  return d.month == 2 && d.day == DaysInMonth(d.year, 2);
}

int64_t Thirty360Days(CivilDate a, CivilDate b) {
  // US (NASD) 30/360, the full rule set, applied in order:
  //   1. both dates are the last day of February  -> d2 = 30;
  //   2. the start date is the last day of February -> d1 = 30;
  //   3. d2 = 31 and d1 is 30 or 31               -> d2 = 30;
  //   4. d1 = 31                                  -> d1 = 30.
  // A 28th/29th that is not end-of-February is never adjusted, so the
  // February rules must run before (not as a side effect of) the
  // day-31 clamps.
  int d1 = a.day;
  int d2 = b.day;
  if (IsLastDayOfFebruary(a) && IsLastDayOfFebruary(b)) d2 = 30;
  if (IsLastDayOfFebruary(a)) d1 = 30;
  if (d2 == 31 && d1 >= 30) d2 = 30;
  if (d1 == 31) d1 = 30;
  return 360LL * (b.year - a.year) + 30LL * (b.month - a.month) + (d2 - d1);
}

}  // namespace

Result<int64_t> DayCountDays(DayCount convention, CivilDate a, CivilDate b) {
  CALDB_RETURN_IF_ERROR(ValidateDates(a, b));
  switch (convention) {
    case DayCount::kThirty360:
      return Thirty360Days(a, b);
    case DayCount::kAct365:
    case DayCount::kActAct:
      return DaysFromCivil(b) - DaysFromCivil(a);
  }
  return Status::Internal("unknown day count");
}

Result<double> YearFraction(DayCount convention, CivilDate a, CivilDate b) {
  CALDB_RETURN_IF_ERROR(ValidateDates(a, b));
  if (b < a) {
    CALDB_ASSIGN_OR_RETURN(double inverted, YearFraction(convention, b, a));
    return -inverted;
  }
  switch (convention) {
    case DayCount::kThirty360:
      return static_cast<double>(Thirty360Days(a, b)) / 360.0;
    case DayCount::kAct365:
      return static_cast<double>(DaysFromCivil(b) - DaysFromCivil(a)) / 365.0;
    case DayCount::kActAct: {
      // Split the span by calendar year; each piece is weighted by its own
      // year length.
      double fraction = 0;
      CivilDate cursor = a;
      while (cursor.year < b.year) {
        CivilDate year_end{cursor.year + 1, 1, 1};
        fraction += static_cast<double>(DaysFromCivil(year_end) -
                                        DaysFromCivil(cursor)) /
                    DaysInYear(cursor.year);
        cursor = year_end;
      }
      fraction += static_cast<double>(DaysFromCivil(b) - DaysFromCivil(cursor)) /
                  DaysInYear(cursor.year);
      return fraction;
    }
  }
  return Status::Internal("unknown day count");
}

Result<double> AccruedInterest(double face, double annual_rate,
                               DayCount convention, CivilDate last_coupon,
                               CivilDate settlement) {
  if (settlement < last_coupon) {
    return Status::InvalidArgument("settlement precedes last coupon date");
  }
  CALDB_ASSIGN_OR_RETURN(double fraction,
                         YearFraction(convention, last_coupon, settlement));
  return face * annual_rate * fraction;
}

Result<double> SimpleYield(double price, double face, double annual_rate,
                           CivilDate purchase, CivilDate sale) {
  if (price <= 0) {
    return Status::InvalidArgument("price must be positive");
  }
  if (sale < purchase) {
    return Status::InvalidArgument("sale precedes purchase");
  }
  // Coupon income over the holding period, on 30/360 date arithmetic.
  CALDB_ASSIGN_OR_RETURN(double accrual_fraction,
                         YearFraction(DayCount::kThirty360, purchase, sale));
  double income = face * annual_rate * accrual_fraction;
  // Annualize over actual days held, with a 365-day year.
  int64_t actual_days = DaysFromCivil(sale) - DaysFromCivil(purchase);
  if (actual_days == 0) {
    return Status::InvalidArgument("holding period must be at least one day");
  }
  return (income / price) * (365.0 / static_cast<double>(actual_days));
}

}  // namespace caldb
