#include "finance/market_calendars.h"

#include <algorithm>

#include "common/macros.h"
#include "core/algebra.h"

namespace caldb {

namespace {

// The civil date of the n-th (1-based) `weekday` of (year, month).
CivilDate NthWeekday(int32_t year, int32_t month, Weekday weekday, int n) {
  CivilDate first{year, month, 1};
  int first_wd = static_cast<int>(WeekdayFromDays(DaysFromCivil(first)));
  int want = static_cast<int>(weekday);
  int offset = (want - first_wd + 7) % 7 + (n - 1) * 7;
  return CivilFromDays(DaysFromCivil(first) + offset);
}

// The civil date of the last `weekday` of (year, month).
CivilDate LastWeekday(int32_t year, int32_t month, Weekday weekday) {
  CivilDate last{year, month, DaysInMonth(year, month)};
  int last_wd = static_cast<int>(WeekdayFromDays(DaysFromCivil(last)));
  int want = static_cast<int>(weekday);
  int offset = (last_wd - want + 7) % 7;
  return CivilFromDays(DaysFromCivil(last) - offset);
}

// Fixed-date holidays observed on the nearest weekday (Sat -> Fri,
// Sun -> Mon).
CivilDate ObservedDate(CivilDate d) {
  Weekday wd = WeekdayFromDays(DaysFromCivil(d));
  if (wd == Weekday::kSaturday) return CivilFromDays(DaysFromCivil(d) - 1);
  if (wd == Weekday::kSunday) return CivilFromDays(DaysFromCivil(d) + 1);
  return d;
}

Status RequirePointCalendar(const Calendar& c, const char* what) {
  if (c.order() != 1) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be an order-1 calendar");
  }
  for (const Interval& i : c.intervals()) {
    if (i.lo != i.hi) {
      return Status::InvalidArgument(
          std::string(what) + " must contain single-day intervals, got " +
          FormatInterval(i));
    }
  }
  return Status::OK();
}

}  // namespace

Result<Calendar> UsFederalHolidays(const TimeSystem& ts, int32_t first_year,
                                   int32_t last_year) {
  if (last_year < first_year) {
    return Status::InvalidArgument("holiday year range is inverted");
  }
  std::vector<Interval> days;
  for (int32_t year = first_year; year <= last_year; ++year) {
    std::vector<CivilDate> dates = {
        ObservedDate({year, 1, 1}),                       // New Year
        NthWeekday(year, 1, Weekday::kMonday, 3),         // MLK
        NthWeekday(year, 2, Weekday::kMonday, 3),         // Presidents
        LastWeekday(year, 5, Weekday::kMonday),           // Memorial
        ObservedDate({year, 7, 4}),                       // Independence
        NthWeekday(year, 9, Weekday::kMonday, 1),         // Labor
        NthWeekday(year, 11, Weekday::kThursday, 4),      // Thanksgiving
        ObservedDate({year, 12, 25}),                     // Christmas
    };
    for (const CivilDate& d : dates) {
      days.push_back(PointInterval(ts.DayPointFromCivil(d)));
    }
  }
  // Observation shifts can step across year boundaries; sort and dedup.
  std::sort(days.begin(), days.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  days.erase(std::unique(days.begin(), days.end()), days.end());
  return Calendar::Order1(Granularity::kDays, std::move(days));
}

Result<Calendar> WeekendDays(const TimeSystem& ts, const Interval& window_days) {
  std::vector<Interval> days;
  for (TimePoint d = window_days.lo; d <= window_days.hi; d = PointAdd(d, 1)) {
    Weekday wd = ts.WeekdayOfDayPoint(d);
    if (wd == Weekday::kSaturday || wd == Weekday::kSunday) {
      days.push_back(PointInterval(d));
    }
  }
  return Calendar::Order1(Granularity::kDays, std::move(days));
}

Result<Calendar> BusinessDays(const TimeSystem& ts, const Interval& window_days,
                              const Calendar& holidays) {
  CALDB_RETURN_IF_ERROR(RequirePointCalendar(holidays, "holidays"));
  std::vector<Interval> days;
  for (TimePoint d = window_days.lo; d <= window_days.hi; d = PointAdd(d, 1)) {
    Weekday wd = ts.WeekdayOfDayPoint(d);
    if (wd == Weekday::kSaturday || wd == Weekday::kSunday) continue;
    if (holidays.ContainsPoint(d)) continue;
    days.push_back(PointInterval(d));
  }
  return Calendar::Order1(Granularity::kDays, std::move(days));
}

Result<TimePoint> PrecedingBusinessDay(const Calendar& business_days,
                                       TimePoint day) {
  CALDB_RETURN_IF_ERROR(RequirePointCalendar(business_days, "business days"));
  IntervalSpan points = business_days.intervals();
  for (auto it = points.rbegin(); it != points.rend(); ++it) {
    if (it->lo <= day) return it->lo;
  }
  return Status::NotFound("no business day at or before " + std::to_string(day));
}

Result<TimePoint> NextBusinessDay(const Calendar& business_days, TimePoint day) {
  CALDB_RETURN_IF_ERROR(RequirePointCalendar(business_days, "business days"));
  for (const Interval& i : business_days.intervals()) {
    if (i.lo >= day) return i.lo;
  }
  return Status::NotFound("no business day at or after " + std::to_string(day));
}

Result<TimePoint> AddBusinessDays(const Calendar& business_days, TimePoint day,
                                  int64_t n) {
  CALDB_RETURN_IF_ERROR(RequirePointCalendar(business_days, "business days"));
  IntervalSpan points = business_days.intervals();
  if (points.empty()) return Status::NotFound("business-day calendar is empty");
  // Anchor: for forward moves the first business day >= day; for backward
  // moves the last business day <= day.
  auto lower = std::lower_bound(
      points.begin(), points.end(), day,
      [](const Interval& i, TimePoint d) { return i.lo < d; });
  int64_t anchor;
  if (n >= 0) {
    if (lower == points.end()) {
      return Status::NotFound("no business day at or after " +
                              std::to_string(day));
    }
    anchor = lower - points.begin();
    // Moving forward n days from a non-business day counts the anchor as
    // the first step.
    if (points[static_cast<size_t>(anchor)].lo != day && n > 0) --n;
  } else {
    if (lower == points.begin() &&
        points.front().lo != day) {
      return Status::NotFound("no business day at or before " +
                              std::to_string(day));
    }
    anchor = lower - points.begin();
    if (lower == points.end() || points[static_cast<size_t>(anchor)].lo != day) {
      --anchor;  // last business day before `day`
      ++n;       // that step already moved one business day back
    }
  }
  int64_t target = anchor + n;
  if (target < 0 || target >= static_cast<int64_t>(points.size())) {
    return Status::OutOfRange("business-day arithmetic leaves the calendar");
  }
  return points[static_cast<size_t>(target)].lo;
}

Result<TimePoint> OptionExpirationDay(const TimeSystem& ts, int32_t year,
                                      int32_t month,
                                      const Calendar& business_days) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month must be 1..12");
  }
  CivilDate third_friday = NthWeekday(year, month, Weekday::kFriday, 3);
  TimePoint day = ts.DayPointFromCivil(third_friday);
  if (business_days.ContainsPoint(day)) return day;
  // "...else it is the business day preceding the above mentioned Friday".
  return PrecedingBusinessDay(business_days, PointAdd(day, -1));
}

Status InstallMarketCalendars(CalendarCatalog* catalog, int32_t first_year,
                              int32_t last_year) {
  const TimeSystem& ts = catalog->time_system();
  CALDB_ASSIGN_OR_RETURN(Interval window,
                         catalog->YearWindow(first_year, last_year));
  CALDB_ASSIGN_OR_RETURN(Calendar holidays,
                         UsFederalHolidays(ts, first_year, last_year));
  CALDB_ASSIGN_OR_RETURN(Calendar business, BusinessDays(ts, window, holidays));
  CALDB_RETURN_IF_ERROR(catalog->DefineValues("HOLIDAYS", holidays, window));
  CALDB_RETURN_IF_ERROR(catalog->DefineValues("AM_BUS_DAYS", business, window));
  return Status::OK();
}

}  // namespace caldb
