file(REMOVE_RECURSE
  "CMakeFiles/db_edge_cases_test.dir/db/db_edge_cases_test.cc.o"
  "CMakeFiles/db_edge_cases_test.dir/db/db_edge_cases_test.cc.o.d"
  "db_edge_cases_test"
  "db_edge_cases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
