# Empty dependencies file for db_edge_cases_test.
# This may be replaced when dependencies are built.
