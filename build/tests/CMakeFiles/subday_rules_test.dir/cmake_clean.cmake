file(REMOVE_RECURSE
  "CMakeFiles/subday_rules_test.dir/rules/subday_rules_test.cc.o"
  "CMakeFiles/subday_rules_test.dir/rules/subday_rules_test.cc.o.d"
  "subday_rules_test"
  "subday_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subday_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
