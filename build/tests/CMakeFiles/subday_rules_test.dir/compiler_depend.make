# Empty compiler generated dependencies file for subday_rules_test.
# This may be replaced when dependencies are built.
