file(REMOVE_RECURSE
  "CMakeFiles/foreach_paper_examples_test.dir/core/foreach_paper_examples_test.cc.o"
  "CMakeFiles/foreach_paper_examples_test.dir/core/foreach_paper_examples_test.cc.o.d"
  "foreach_paper_examples_test"
  "foreach_paper_examples_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foreach_paper_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
