file(REMOVE_RECURSE
  "CMakeFiles/civil_test.dir/time/civil_test.cc.o"
  "CMakeFiles/civil_test.dir/time/civil_test.cc.o.d"
  "civil_test"
  "civil_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/civil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
