file(REMOVE_RECURSE
  "CMakeFiles/calendar_functions_test.dir/catalog/calendar_functions_test.cc.o"
  "CMakeFiles/calendar_functions_test.dir/catalog/calendar_functions_test.cc.o.d"
  "calendar_functions_test"
  "calendar_functions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calendar_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
