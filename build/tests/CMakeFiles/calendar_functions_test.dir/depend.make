# Empty dependencies file for calendar_functions_test.
# This may be replaced when dependencies are built.
