file(REMOVE_RECURSE
  "CMakeFiles/time_system_test.dir/time/time_system_test.cc.o"
  "CMakeFiles/time_system_test.dir/time/time_system_test.cc.o.d"
  "time_system_test"
  "time_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
