# Empty dependencies file for time_system_test.
# This may be replaced when dependencies are built.
