file(REMOVE_RECURSE
  "CMakeFiles/next_fire_test.dir/catalog/next_fire_test.cc.o"
  "CMakeFiles/next_fire_test.dir/catalog/next_fire_test.cc.o.d"
  "next_fire_test"
  "next_fire_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/next_fire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
