# Empty dependencies file for next_fire_test.
# This may be replaced when dependencies are built.
