file(REMOVE_RECURSE
  "CMakeFiles/granularity_sweep_test.dir/core/granularity_sweep_test.cc.o"
  "CMakeFiles/granularity_sweep_test.dir/core/granularity_sweep_test.cc.o.d"
  "granularity_sweep_test"
  "granularity_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granularity_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
