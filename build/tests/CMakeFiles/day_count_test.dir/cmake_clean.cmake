file(REMOVE_RECURSE
  "CMakeFiles/day_count_test.dir/finance/day_count_test.cc.o"
  "CMakeFiles/day_count_test.dir/finance/day_count_test.cc.o.d"
  "day_count_test"
  "day_count_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/day_count_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
