file(REMOVE_RECURSE
  "CMakeFiles/script_paper_examples_test.dir/lang/script_paper_examples_test.cc.o"
  "CMakeFiles/script_paper_examples_test.dir/lang/script_paper_examples_test.cc.o.d"
  "script_paper_examples_test"
  "script_paper_examples_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_paper_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
