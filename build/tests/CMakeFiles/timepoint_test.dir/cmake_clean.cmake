file(REMOVE_RECURSE
  "CMakeFiles/timepoint_test.dir/time/timepoint_test.cc.o"
  "CMakeFiles/timepoint_test.dir/time/timepoint_test.cc.o.d"
  "timepoint_test"
  "timepoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timepoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
