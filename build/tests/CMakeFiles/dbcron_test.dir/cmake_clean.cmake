file(REMOVE_RECURSE
  "CMakeFiles/dbcron_test.dir/rules/dbcron_test.cc.o"
  "CMakeFiles/dbcron_test.dir/rules/dbcron_test.cc.o.d"
  "dbcron_test"
  "dbcron_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbcron_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
