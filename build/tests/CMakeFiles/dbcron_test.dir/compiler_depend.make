# Empty compiler generated dependencies file for dbcron_test.
# This may be replaced when dependencies are built.
