# Empty dependencies file for conditional_rules_test.
# This may be replaced when dependencies are built.
