file(REMOVE_RECURSE
  "CMakeFiles/conditional_rules_test.dir/rules/conditional_rules_test.cc.o"
  "CMakeFiles/conditional_rules_test.dir/rules/conditional_rules_test.cc.o.d"
  "conditional_rules_test"
  "conditional_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conditional_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
