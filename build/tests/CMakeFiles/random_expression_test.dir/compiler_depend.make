# Empty compiler generated dependencies file for random_expression_test.
# This may be replaced when dependencies are built.
