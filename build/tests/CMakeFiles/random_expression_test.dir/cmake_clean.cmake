file(REMOVE_RECURSE
  "CMakeFiles/random_expression_test.dir/lang/random_expression_test.cc.o"
  "CMakeFiles/random_expression_test.dir/lang/random_expression_test.cc.o.d"
  "random_expression_test"
  "random_expression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_expression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
