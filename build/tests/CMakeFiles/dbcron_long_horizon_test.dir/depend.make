# Empty dependencies file for dbcron_long_horizon_test.
# This may be replaced when dependencies are built.
