file(REMOVE_RECURSE
  "CMakeFiles/dbcron_long_horizon_test.dir/rules/dbcron_long_horizon_test.cc.o"
  "CMakeFiles/dbcron_long_horizon_test.dir/rules/dbcron_long_horizon_test.cc.o.d"
  "dbcron_long_horizon_test"
  "dbcron_long_horizon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbcron_long_horizon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
