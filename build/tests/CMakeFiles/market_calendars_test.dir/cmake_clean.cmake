file(REMOVE_RECURSE
  "CMakeFiles/market_calendars_test.dir/finance/market_calendars_test.cc.o"
  "CMakeFiles/market_calendars_test.dir/finance/market_calendars_test.cc.o.d"
  "market_calendars_test"
  "market_calendars_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_calendars_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
