# Empty compiler generated dependencies file for caldb.
# This may be replaced when dependencies are built.
