file(REMOVE_RECURSE
  "libcaldb.a"
)
