
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/calendar_catalog.cc" "src/CMakeFiles/caldb.dir/catalog/calendar_catalog.cc.o" "gcc" "src/CMakeFiles/caldb.dir/catalog/calendar_catalog.cc.o.d"
  "/root/repo/src/catalog/calendar_functions.cc" "src/CMakeFiles/caldb.dir/catalog/calendar_functions.cc.o" "gcc" "src/CMakeFiles/caldb.dir/catalog/calendar_functions.cc.o.d"
  "/root/repo/src/catalog/catalog_io.cc" "src/CMakeFiles/caldb.dir/catalog/catalog_io.cc.o" "gcc" "src/CMakeFiles/caldb.dir/catalog/catalog_io.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/caldb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/caldb.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/caldb.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/caldb.dir/common/strings.cc.o.d"
  "/root/repo/src/core/algebra.cc" "src/CMakeFiles/caldb.dir/core/algebra.cc.o" "gcc" "src/CMakeFiles/caldb.dir/core/algebra.cc.o.d"
  "/root/repo/src/core/calendar.cc" "src/CMakeFiles/caldb.dir/core/calendar.cc.o" "gcc" "src/CMakeFiles/caldb.dir/core/calendar.cc.o.d"
  "/root/repo/src/core/generate.cc" "src/CMakeFiles/caldb.dir/core/generate.cc.o" "gcc" "src/CMakeFiles/caldb.dir/core/generate.cc.o.d"
  "/root/repo/src/core/interval.cc" "src/CMakeFiles/caldb.dir/core/interval.cc.o" "gcc" "src/CMakeFiles/caldb.dir/core/interval.cc.o.d"
  "/root/repo/src/db/btree.cc" "src/CMakeFiles/caldb.dir/db/btree.cc.o" "gcc" "src/CMakeFiles/caldb.dir/db/btree.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/caldb.dir/db/database.cc.o" "gcc" "src/CMakeFiles/caldb.dir/db/database.cc.o.d"
  "/root/repo/src/db/expression.cc" "src/CMakeFiles/caldb.dir/db/expression.cc.o" "gcc" "src/CMakeFiles/caldb.dir/db/expression.cc.o.d"
  "/root/repo/src/db/function_registry.cc" "src/CMakeFiles/caldb.dir/db/function_registry.cc.o" "gcc" "src/CMakeFiles/caldb.dir/db/function_registry.cc.o.d"
  "/root/repo/src/db/query_parser.cc" "src/CMakeFiles/caldb.dir/db/query_parser.cc.o" "gcc" "src/CMakeFiles/caldb.dir/db/query_parser.cc.o.d"
  "/root/repo/src/db/schema.cc" "src/CMakeFiles/caldb.dir/db/schema.cc.o" "gcc" "src/CMakeFiles/caldb.dir/db/schema.cc.o.d"
  "/root/repo/src/db/table.cc" "src/CMakeFiles/caldb.dir/db/table.cc.o" "gcc" "src/CMakeFiles/caldb.dir/db/table.cc.o.d"
  "/root/repo/src/db/value.cc" "src/CMakeFiles/caldb.dir/db/value.cc.o" "gcc" "src/CMakeFiles/caldb.dir/db/value.cc.o.d"
  "/root/repo/src/finance/day_count.cc" "src/CMakeFiles/caldb.dir/finance/day_count.cc.o" "gcc" "src/CMakeFiles/caldb.dir/finance/day_count.cc.o.d"
  "/root/repo/src/finance/market_calendars.cc" "src/CMakeFiles/caldb.dir/finance/market_calendars.cc.o" "gcc" "src/CMakeFiles/caldb.dir/finance/market_calendars.cc.o.d"
  "/root/repo/src/lang/analyzer.cc" "src/CMakeFiles/caldb.dir/lang/analyzer.cc.o" "gcc" "src/CMakeFiles/caldb.dir/lang/analyzer.cc.o.d"
  "/root/repo/src/lang/ast.cc" "src/CMakeFiles/caldb.dir/lang/ast.cc.o" "gcc" "src/CMakeFiles/caldb.dir/lang/ast.cc.o.d"
  "/root/repo/src/lang/evaluator.cc" "src/CMakeFiles/caldb.dir/lang/evaluator.cc.o" "gcc" "src/CMakeFiles/caldb.dir/lang/evaluator.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/CMakeFiles/caldb.dir/lang/lexer.cc.o" "gcc" "src/CMakeFiles/caldb.dir/lang/lexer.cc.o.d"
  "/root/repo/src/lang/optimizer.cc" "src/CMakeFiles/caldb.dir/lang/optimizer.cc.o" "gcc" "src/CMakeFiles/caldb.dir/lang/optimizer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/CMakeFiles/caldb.dir/lang/parser.cc.o" "gcc" "src/CMakeFiles/caldb.dir/lang/parser.cc.o.d"
  "/root/repo/src/lang/plan.cc" "src/CMakeFiles/caldb.dir/lang/plan.cc.o" "gcc" "src/CMakeFiles/caldb.dir/lang/plan.cc.o.d"
  "/root/repo/src/lang/planner.cc" "src/CMakeFiles/caldb.dir/lang/planner.cc.o" "gcc" "src/CMakeFiles/caldb.dir/lang/planner.cc.o.d"
  "/root/repo/src/rules/dbcron.cc" "src/CMakeFiles/caldb.dir/rules/dbcron.cc.o" "gcc" "src/CMakeFiles/caldb.dir/rules/dbcron.cc.o.d"
  "/root/repo/src/rules/temporal_rules.cc" "src/CMakeFiles/caldb.dir/rules/temporal_rules.cc.o" "gcc" "src/CMakeFiles/caldb.dir/rules/temporal_rules.cc.o.d"
  "/root/repo/src/time/civil.cc" "src/CMakeFiles/caldb.dir/time/civil.cc.o" "gcc" "src/CMakeFiles/caldb.dir/time/civil.cc.o.d"
  "/root/repo/src/time/granularity.cc" "src/CMakeFiles/caldb.dir/time/granularity.cc.o" "gcc" "src/CMakeFiles/caldb.dir/time/granularity.cc.o.d"
  "/root/repo/src/time/time_system.cc" "src/CMakeFiles/caldb.dir/time/time_system.cc.o" "gcc" "src/CMakeFiles/caldb.dir/time/time_system.cc.o.d"
  "/root/repo/src/timeseries/pattern.cc" "src/CMakeFiles/caldb.dir/timeseries/pattern.cc.o" "gcc" "src/CMakeFiles/caldb.dir/timeseries/pattern.cc.o.d"
  "/root/repo/src/timeseries/time_series.cc" "src/CMakeFiles/caldb.dir/timeseries/time_series.cc.o" "gcc" "src/CMakeFiles/caldb.dir/timeseries/time_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
