file(REMOVE_RECURSE
  "CMakeFiles/bench_db_queries.dir/bench_db_queries.cc.o"
  "CMakeFiles/bench_db_queries.dir/bench_db_queries.cc.o.d"
  "bench_db_queries"
  "bench_db_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_db_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
