# Empty dependencies file for bench_db_queries.
# This may be replaced when dependencies are built.
