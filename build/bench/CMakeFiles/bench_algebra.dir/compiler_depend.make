# Empty compiler generated dependencies file for bench_algebra.
# This may be replaced when dependencies are built.
