file(REMOVE_RECURSE
  "CMakeFiles/bench_selection_pushdown.dir/bench_selection_pushdown.cc.o"
  "CMakeFiles/bench_selection_pushdown.dir/bench_selection_pushdown.cc.o.d"
  "bench_selection_pushdown"
  "bench_selection_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selection_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
