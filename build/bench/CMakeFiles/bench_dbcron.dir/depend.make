# Empty dependencies file for bench_dbcron.
# This may be replaced when dependencies are built.
