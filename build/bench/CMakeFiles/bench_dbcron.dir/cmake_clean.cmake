file(REMOVE_RECURSE
  "CMakeFiles/bench_dbcron.dir/bench_dbcron.cc.o"
  "CMakeFiles/bench_dbcron.dir/bench_dbcron.cc.o.d"
  "bench_dbcron"
  "bench_dbcron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dbcron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
