# Empty dependencies file for bench_factorization.
# This may be replaced when dependencies are built.
