file(REMOVE_RECURSE
  "CMakeFiles/timeseries_gnp.dir/timeseries_gnp.cc.o"
  "CMakeFiles/timeseries_gnp.dir/timeseries_gnp.cc.o.d"
  "timeseries_gnp"
  "timeseries_gnp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeseries_gnp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
