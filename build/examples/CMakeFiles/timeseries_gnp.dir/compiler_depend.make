# Empty compiler generated dependencies file for timeseries_gnp.
# This may be replaced when dependencies are built.
