file(REMOVE_RECURSE
  "CMakeFiles/university_semester.dir/university_semester.cc.o"
  "CMakeFiles/university_semester.dir/university_semester.cc.o.d"
  "university_semester"
  "university_semester.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_semester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
