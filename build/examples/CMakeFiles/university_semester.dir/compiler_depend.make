# Empty compiler generated dependencies file for university_semester.
# This may be replaced when dependencies are built.
