# Empty dependencies file for temporal_rules.
# This may be replaced when dependencies are built.
