file(REMOVE_RECURSE
  "CMakeFiles/temporal_rules.dir/temporal_rules.cc.o"
  "CMakeFiles/temporal_rules.dir/temporal_rules.cc.o.d"
  "temporal_rules"
  "temporal_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
