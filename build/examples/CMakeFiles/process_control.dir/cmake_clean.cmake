file(REMOVE_RECURSE
  "CMakeFiles/process_control.dir/process_control.cc.o"
  "CMakeFiles/process_control.dir/process_control.cc.o.d"
  "process_control"
  "process_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
