# Empty compiler generated dependencies file for financial_options.
# This may be replaced when dependencies are built.
