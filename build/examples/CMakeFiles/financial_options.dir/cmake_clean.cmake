file(REMOVE_RECURSE
  "CMakeFiles/financial_options.dir/financial_options.cc.o"
  "CMakeFiles/financial_options.dir/financial_options.cc.o.d"
  "financial_options"
  "financial_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/financial_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
