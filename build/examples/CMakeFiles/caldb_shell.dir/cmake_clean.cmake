file(REMOVE_RECURSE
  "CMakeFiles/caldb_shell.dir/caldb_shell.cc.o"
  "CMakeFiles/caldb_shell.dir/caldb_shell.cc.o.d"
  "caldb_shell"
  "caldb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caldb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
