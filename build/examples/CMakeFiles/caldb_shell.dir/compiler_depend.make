# Empty compiler generated dependencies file for caldb_shell.
# This may be replaced when dependencies are built.
