// Temporal rules end to end (§4, Figure 4): declare rules on calendar
// expressions, then let DBCRON — running on the Engine's background
// thread — play a simulated quarter of virtual time.  Built on the public
// facade (caldb.h) only.

#include <cstdio>

#include "caldb.h"

using namespace caldb;

namespace {

Status Run() {
  CALDB_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine, Engine::Create());
  const TimeSystem& ts = engine->time_system();
  CALDB_RETURN_IF_ERROR(InstallMarketCalendars(&engine->catalog(), 1993, 1994));

  std::unique_ptr<Session> session = engine->CreateSession();
  CALDB_RETURN_IF_ERROR(
      session->Execute("create table alerts (day int, what text)").status());

  auto alert = [&ts](const char* what) {
    TemporalAction action;
    action.callback = [what, &ts](TimePoint day) {
      std::printf("  %s  fired: %s\n",
                  FormatCivil(ts.CivilFromDayPoint(day)).c_str(), what);
      return Status::OK();
    };
    return action;
  };

  // "On Every Tuesday do Proc_X" — the paper's own example rule.
  CALDB_RETURN_IF_ERROR(
      engine
          ->DeclareRule("every_tuesday", "[2]/DAYS:during:WEEKS",
                        alert("weekly staff meeting (Tuesday)"))
          .status());
  // EMP-DAYS (§3.3): the last day of every month, or the preceding
  // business day when the month ends on a weekend/holiday.
  CALDB_RETURN_IF_ERROR(
      engine
          ->DeclareRule("employment_figures", R"(
      {LDOM = [n]/DAYS:during:MONTHS;
       LDOM_HOL = LDOM - AM_BUS_DAYS:intersects:LDOM;
       LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
       return (LDOM - LDOM_HOL + LAST_BUS_DAY);})",
                        alert("employment figures released"))
          .status());
  // A rule with a database command action — declared through the uniform
  // Session entry point this time.  $1 binds the firing day at each
  // firing (the parameterized sibling of the fire_day() function).
  CALDB_RETURN_IF_ERROR(
      session
          ->Execute(
              "declare rule quarter_end on "
              "[n]/DAYS:during:caloperate(MONTHS, *, 3) do "
              "append alerts (day = $1, what = 'quarter end')")
          .status());

  std::printf("RULE-INFO after declaration:\n");
  CALDB_ASSIGN_OR_RETURN(
      QueryResult info,
      session->Execute(
          "retrieve (r.rule_id, r.name, r.expression) from r in RULE_INFO"));
  std::printf("%s\n", info.ToString().c_str());

  std::printf("Advancing virtual time through Q1 1993 (probe period 7 days):\n");
  CALDB_RETURN_IF_ERROR(engine->AdvanceToCivil({1993, 3, 31}));

  const DbCron::CronStats stats = engine->CronStats();
  std::printf("\nDBCRON stats: %lld probes, %lld firings, heap peak %lld\n",
              static_cast<long long>(stats.probes),
              static_cast<long long>(stats.fires),
              static_cast<long long>(stats.max_heap_size));

  // Read the alerts back through a prepared handle: compiled once, the
  // cutoff day bound at execute (Session::Prepare → PreparedStatement).
  CALDB_ASSIGN_OR_RETURN(
      PreparedStatement alerts_after,
      session->Prepare(
          "retrieve (a.day, a.what) from a in alerts where a.day >= $1"));
  CALDB_ASSIGN_OR_RETURN(QueryResult alerts,
                         alerts_after.Execute({Value::Int(1)}));
  std::printf("\nalerts table (written by the command-action rule):\n%s",
              alerts.ToString().c_str());

  CALDB_ASSIGN_OR_RETURN(
      QueryResult pending,
      session->Execute(
          "retrieve (t.rule_id, t.next_fire) from t in RULE_TIME"));
  std::printf("\nRULE-TIME (next firing of each rule):\n%s",
              pending.ToString().c_str());
  return Status::OK();
}

}  // namespace

int main() {
  Status st = Run();
  if (!st.ok()) {
    std::printf("ERROR: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
