// Process control (§1 names "manufacturing and process control" among the
// motivating applications): an Engine configured at HOURS granularity
// drives a plant's inspection and shift schedule from DBCRON's background
// thread, with a database condition gating an alert.  Built on the public
// facade (caldb.h) only.

#include <cstdio>

#include "caldb.h"

using namespace caldb;

namespace {

Status Run() {
  // Hour-granularity rules: point 1 is Jan 1 1993, 00:00-01:00.  The
  // probe period is 6 hours of virtual time.
  EngineOptions opts;
  opts.rule_unit = Granularity::kHours;
  opts.probe_period = 6;
  opts.rule_horizon = 24 * 60;
  CALDB_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine, Engine::Create(opts));
  const TimeSystem& ts = engine->time_system();

  std::unique_ptr<Session> session = engine->CreateSession();
  CALDB_RETURN_IF_ERROR(
      session->Execute("create table sensor (reading float)").status());
  CALDB_RETURN_IF_ERROR(
      session->Execute("create table alerts (hour int, what text)").status());
  CALDB_RETURN_IF_ERROR(
      session->Execute("append sensor (reading = 96.5)").status());

  auto describe = [&ts](TimePoint hour) {
    // Hour points map to (day, hour-of-day) through the time system.
    Interval day = IntervalToUnit(ts, Granularity::kHours, PointInterval(hour),
                                  Granularity::kDays)
                       .value();
    int64_t hour_of_day =
        PointDistance(ts.GranuleToUnit(Granularity::kDays, day.lo,
                                       Granularity::kHours)
                          .value()
                          .lo,
                      hour);
    return FormatCivil(ts.CivilFromDayPoint(day.lo)) + " " +
           std::to_string(hour_of_day) + ":00";
  };

  // Shift changes every 8 hours.
  TemporalAction shift;
  shift.callback = [&describe](TimePoint hour) {
    std::printf("  %s  shift change\n", describe(hour).c_str());
    return Status::OK();
  };
  CALDB_RETURN_IF_ERROR(
      engine->DeclareRule("shifts", "[1,9,17]/HOURS:during:DAYS", shift)
          .status());

  // A daily quality sweep at hour 12, but only while the boiler runs hot
  // (a database condition — the §6b extension).
  TemporalAction sweep;
  sweep.command = "append alerts (hour = fire_day(), what = 'overheat sweep')";
  CALDB_RETURN_IF_ERROR(engine
                            ->DeclareRule("sweep", "[12]/HOURS:during:DAYS",
                                          sweep,
                                          "retrieve (s.reading) from s in "
                                          "sensor where s.reading > 95.0")
                            .status());

  std::printf("Two days of plant time (probe period: 6 hours):\n");
  CALDB_RETURN_IF_ERROR(engine->AdvanceTo(24));
  // Overnight, the boiler cools: the sweep stops firing.
  CALDB_RETURN_IF_ERROR(
      session->Execute("replace s in sensor (reading = 82.0)").status());
  std::printf("  (boiler cooled to 82.0 overnight)\n");
  CALDB_RETURN_IF_ERROR(engine->AdvanceTo(48));

  CALDB_ASSIGN_OR_RETURN(
      QueryResult alerts,
      session->Execute("retrieve (a.hour, a.what) from a in alerts"));
  std::printf("\nalerts (condition-gated; only the hot day fired):\n%s",
              alerts.ToString().c_str());
  const TemporalRuleManager::FireStats fire_stats = engine->WithRulesRead(
      [](const TemporalRuleManager& rules) { return rules.fire_stats(); });
  std::printf("\nfired %lld, suppressed by condition %lld\n",
              static_cast<long long>(fire_stats.fired),
              static_cast<long long>(fire_stats.suppressed_by_condition));
  return Status::OK();
}

}  // namespace

int main() {
  Status st = Run();
  if (!st.ok()) {
    std::printf("ERROR: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
