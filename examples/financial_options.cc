// Financial options: the motivating example of §1 — option expiration
// dates ("the 3rd Friday ... if it is a business day, else the business
// day preceding"), last trading days, and yield arithmetic under the
// 30/360 convention.  Built on the public facade (caldb.h): the market
// calendars live in the Engine's catalog, the §3.3 script runs through a
// Session.

#include <cstdio>

#include "caldb.h"

using namespace caldb;

int main() {
  auto engine = Engine::Create().value();
  CalendarCatalog& catalog = engine->catalog();
  const TimeSystem& ts = engine->time_system();
  std::unique_ptr<Session> session = engine->CreateSession();

  // Synthetic US-style market calendars for 1993-1995 (see DESIGN.md for
  // the substitution note).
  Status st = InstallMarketCalendars(&catalog, 1993, 1995);
  if (!st.ok()) {
    std::printf("install failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("== Option expiration days, 1993 (3rd Friday rule) ==\n");
  auto holidays = UsFederalHolidays(ts, 1993, 1995).value();
  auto business =
      BusinessDays(ts, catalog.YearWindow(1993, 1995).value(), holidays);
  for (int month = 1; month <= 12; ++month) {
    auto day = OptionExpirationDay(ts, 1993, month, *business);
    CivilDate d = ts.CivilFromDayPoint(*day);
    std::printf("  %2d/1993 expires %s (%s)\n", month, FormatCivil(d).c_str(),
                std::string(WeekdayName(ts.WeekdayOfDayPoint(*day))).c_str());
  }

  // The same condition as a calendar script (the §3.3 if-example), using
  // the catalog-installed HOLIDAYS / AM_BUS_DAYS.
  std::printf("\n== The §3.3 expiration script for November 1993 ==\n");
  Status def = catalog.DefineValues(
      "Expiration-Month",
      Calendar::Order1(Granularity::kDays,
                       {*ts.DayIntervalFromCivil({1993, 11, 1}, {1993, 11, 30})}));
  if (!def.ok()) {
    std::printf("define failed: %s\n", def.ToString().c_str());
    return 1;
  }
  const char* script = R"(
    {Fridays = [5]/DAYS:during:WEEKS;
     temp1 = [3]/Fridays:overlaps:Expiration-Month;
     if (temp1:intersects:HOLIDAYS)
        return([n]/AM_BUS_DAYS:<:temp1);
     else
        return(temp1);})";
  session->SetWindow(catalog.YearWindow(1993, 1993).value());
  auto expiry = session->EvalScript(script);
  if (!expiry.ok()) {
    std::printf("script failed: %s\n", expiry.status().ToString().c_str());
    return 1;
  }
  TimePoint day = expiry->calendar.intervals().front().lo;
  std::printf("  script result: day %lld = %s\n", static_cast<long long>(day),
              FormatCivil(ts.CivilFromDayPoint(day)).c_str());

  std::printf("\n== Last trading day (7th business day before month end) ==\n");
  TimePoint last_bus =
      PrecedingBusinessDay(*business, ts.DayPointFromCivil({1993, 11, 30}))
          .value();
  TimePoint last_trading = AddBusinessDays(*business, last_bus, -7).value();
  std::printf("  last business day of Nov 1993: %s\n",
              FormatCivil(ts.CivilFromDayPoint(last_bus)).c_str());
  std::printf("  last trading day:              %s\n",
              FormatCivil(ts.CivilFromDayPoint(last_trading)).c_str());

  std::printf("\n== 30/360 date arithmetic (§1's bond example) ==\n");
  double accrued = AccruedInterest(1000, 0.08, DayCount::kThirty360,
                                   {1993, 1, 1}, {1993, 7, 1})
                       .value();
  double fraction_30360 =
      YearFraction(DayCount::kThirty360, {1993, 1, 1}, {1993, 7, 1}).value();
  double fraction_act =
      YearFraction(DayCount::kAct365, {1993, 1, 1}, {1993, 7, 1}).value();
  std::printf("  8%% coupon, face 1000, Jan 1 -> Jul 1 1993\n");
  std::printf("  30/360 year fraction: %.6f (accrued %.2f)\n", fraction_30360,
              accrued);
  std::printf("  ACT/365 year fraction: %.6f  <- a gregorian-only DB would use this\n",
              fraction_act);
  double yield = SimpleYield(1000, 1000, 0.08, {1993, 1, 1}, {1993, 7, 1}).value();
  std::printf("  mixed-convention simple yield: %.6f\n", yield);
  return 0;
}
