// caldb_shell: an interactive front end over the whole system — calendar
// expressions, the CALENDARS catalog, the Postquel-style DB, temporal
// rules and DBCRON on a virtual clock.
//
//   $ build/examples/caldb_shell
//   caldb> \cal [3]/WEEKS:overlaps:days{(1,31)}
//   {(11,17)}
//   caldb> create table alerts (day int, what text)
//   caldb> \rule tue [2]/DAYS:during:WEEKS do append alerts (day = fire_day(), what = 'tuesday')
//   caldb> \advance 1993-02-01
//   caldb> retrieve (a.day, a.what) from a in alerts
//
// Type \help for the command list.  Reads stdin; EOF exits.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "catalog/calendar_functions.h"
#include "catalog/catalog_io.h"
#include "common/macros.h"
#include "common/strings.h"
#include "obs/obs.h"
#include "rules/dbcron.h"

using namespace caldb;

namespace {

class Shell {
 public:
  Shell()
      : catalog_(TimeSystem{CivilDate{1993, 1, 1}}),
        clock_(1),
        window_(Interval{1, 365}) {
    Status st = RegisterCalendarFunctions(&db_, &catalog_);
    if (!st.ok()) std::printf("init: %s\n", st.ToString().c_str());
    auto rules = TemporalRuleManager::Create(&catalog_, &db_);
    if (!rules.ok()) {
      std::printf("init: %s\n", rules.status().ToString().c_str());
      return;
    }
    rules_ = std::move(rules).value();
    cron_ = std::make_unique<DbCron>(rules_.get(), &clock_, 7);
  }

  int Run() {
    std::printf("caldb shell — epoch %s, window days (%lld,%lld). \\help for help.\n",
                FormatCivil(catalog_.time_system().epoch()).c_str(),
                static_cast<long long>(window_.lo),
                static_cast<long long>(window_.hi));
    std::string line;
    while (Prompt(), std::getline(std::cin, line)) {
      std::string trimmed(TrimWhitespace(line));
      if (trimmed.empty()) continue;
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      Status st = Dispatch(trimmed);
      if (!st.ok()) std::printf("error: %s\n", st.ToString().c_str());
    }
    return 0;
  }

 private:
  void Prompt() {
    std::printf("caldb> ");
    std::fflush(stdout);
  }

  Status Dispatch(const std::string& line) {
    if (line[0] != '\\') {
      // A database statement.
      CALDB_ASSIGN_OR_RETURN(QueryResult result, db_.Execute(line));
      std::printf("%s", result.ToString().c_str());
      if (result.columns.empty()) std::printf("\n");
      return Status::OK();
    }
    std::istringstream in(line.substr(1));
    std::string cmd;
    in >> cmd;
    std::string rest;
    std::getline(in, rest);
    rest = std::string(TrimWhitespace(rest));

    if (cmd == "help") return Help();
    if (cmd == "cal") return EvalCalendar(rest);
    if (cmd == "define") return Define(rest);
    if (cmd == "cals") return ListCals();
    if (cmd == "row") return ShowRow(rest);
    if (cmd == "plan") return ShowPlan(rest);
    if (cmd == "window") return SetWindow(rest);
    if (cmd == "today") return SetToday(rest);
    if (cmd == "rule") return DeclareRule(rest);
    if (cmd == "rules") return ListRules();
    if (cmd == "advance") return Advance(rest);
    if (cmd == "dump") return Dump();
    if (cmd == "explain") return Explain(rest);
    if (cmd == "stats") return ShowStats(rest);
    if (cmd == "trace") return ShowTrace();
    return Status::InvalidArgument("unknown command \\" + cmd +
                                   " (try \\help)");
  }

  Status Help() {
    std::printf(
        "  \\cal <expr-or-script>     evaluate a calendar expression\n"
        "  \\define <name> <script>   add a derived calendar to the catalog\n"
        "  \\cals                     list user calendars\n"
        "  \\row <name>               show the CALENDARS row (Figure 1 style)\n"
        "  \\plan <name>              show a calendar's eval-plan\n"
        "  \\window <y1> <y2>         set the evaluation window (civil years)\n"
        "  \\today <YYYY-MM-DD>       set `today`\n"
        "  \\rule <name> <expr> do <command>   declare a temporal rule\n"
        "  \\rules                    list temporal rules + RULE-TIME\n"
        "  \\advance <YYYY-MM-DD>     run DBCRON forward on the virtual clock\n"
        "  \\dump                     dump the catalog\n"
        "  \\explain <script>         run a calendar script with per-step profiling\n"
        "  \\stats [json|reset]       show (or reset) the metric registry\n"
        "  \\trace                    show recent spans from the tracer\n"
        "  anything else             executed as a database statement\n"
        "                            (explain/profile <stmt> show its plan)\n"
        "  \\quit                     exit\n");
    return Status::OK();
  }

  Status EvalCalendar(const std::string& text) {
    if (text.empty()) return Status::InvalidArgument("\\cal needs a script");
    EvalOptions opts;
    opts.window_days = window_;
    opts.today_day = clock_.NowDay();
    CALDB_ASSIGN_OR_RETURN(ScriptValue value,
                           catalog_.EvaluateScript(text, opts));
    switch (value.kind) {
      case ScriptValue::Kind::kCalendar:
        std::printf("%s\n", value.calendar.ToString().c_str());
        break;
      case ScriptValue::Kind::kString:
        std::printf("\"%s\"\n", value.text.c_str());
        break;
      case ScriptValue::Kind::kBlocked:
        std::printf("(blocked: the script is waiting for a later day)\n");
        break;
      case ScriptValue::Kind::kNull:
        std::printf("(null)\n");
        break;
    }
    return Status::OK();
  }

  Status Define(const std::string& rest) {
    size_t space = rest.find(' ');
    if (space == std::string::npos) {
      return Status::InvalidArgument("usage: \\define <name> <script>");
    }
    std::string name = rest.substr(0, space);
    std::string script(TrimWhitespace(rest.substr(space + 1)));
    CALDB_RETURN_IF_ERROR(catalog_.DefineDerived(name, script));
    std::printf("defined %s\n", name.c_str());
    return Status::OK();
  }

  Status ListCals() {
    for (const std::string& name : catalog_.ListCalendars()) {
      auto def = catalog_.Describe(name);
      std::printf("  %-20s %s %s\n", name.c_str(),
                  def.ok() ? std::string(GranularityName(def->granularity)).c_str()
                           : "?",
                  def.ok() && def->values.has_value() ? "(values)" : "(derived)");
    }
    return Status::OK();
  }

  Status ShowRow(const std::string& name) {
    CALDB_ASSIGN_OR_RETURN(std::string row, catalog_.FormatRow(name));
    std::printf("%s", row.c_str());
    return Status::OK();
  }

  Status ShowPlan(const std::string& name) {
    CALDB_ASSIGN_OR_RETURN(CalendarDef def, catalog_.Describe(name));
    if (def.eval_plan == nullptr) {
      return Status::NotFound("'" + name + "' has no eval-plan (values only)");
    }
    std::printf("%s", def.eval_plan->ToString().c_str());
    return Status::OK();
  }

  Status SetWindow(const std::string& rest) {
    std::istringstream in(rest);
    int y1 = 0;
    int y2 = 0;
    if (!(in >> y1 >> y2)) {
      return Status::InvalidArgument("usage: \\window <first-year> <last-year>");
    }
    CALDB_ASSIGN_OR_RETURN(window_, catalog_.YearWindow(y1, y2));
    std::printf("window days (%lld,%lld)\n", static_cast<long long>(window_.lo),
                static_cast<long long>(window_.hi));
    return Status::OK();
  }

  Status SetToday(const std::string& rest) {
    CALDB_ASSIGN_OR_RETURN(CivilDate date, ParseCivil(rest));
    clock_.AdvanceTo(catalog_.time_system().DayPointFromCivil(date));
    std::printf("today = %s (day %lld)\n", FormatCivil(date).c_str(),
                static_cast<long long>(clock_.NowDay()));
    return Status::OK();
  }

  Status DeclareRule(const std::string& rest) {
    size_t name_end = rest.find(' ');
    size_t do_pos = rest.find(" do ");
    if (name_end == std::string::npos || do_pos == std::string::npos ||
        do_pos < name_end) {
      return Status::InvalidArgument(
          "usage: \\rule <name> <calendar-expr> do <db-command>");
    }
    std::string name = rest.substr(0, name_end);
    std::string expr(
        TrimWhitespace(rest.substr(name_end + 1, do_pos - name_end - 1)));
    TemporalAction action;
    action.command = std::string(TrimWhitespace(rest.substr(do_pos + 4)));
    CALDB_RETURN_IF_ERROR(
        rules_->DeclareRule(name, expr, std::move(action), clock_.NowDay())
            .status());
    std::printf("declared rule %s\n", name.c_str());
    return Status::OK();
  }

  Status ListRules() {
    CALDB_ASSIGN_OR_RETURN(
        QueryResult info,
        db_.Execute("retrieve (r.rule_id, r.name, r.expression) from r in "
                    "RULE_INFO"));
    std::printf("%s", info.ToString().c_str());
    CALDB_ASSIGN_OR_RETURN(
        QueryResult times,
        db_.Execute("retrieve (t.rule_id, t.next_fire) from t in RULE_TIME"));
    std::printf("%s", times.ToString().c_str());
    return Status::OK();
  }

  Status Advance(const std::string& rest) {
    CALDB_ASSIGN_OR_RETURN(CivilDate date, ParseCivil(rest));
    TimePoint target = catalog_.time_system().DayPointFromCivil(date);
    CALDB_RETURN_IF_ERROR(cron_->AdvanceTo(target));
    std::printf("advanced to %s (%lld firings so far)\n",
                FormatCivil(date).c_str(),
                static_cast<long long>(cron_->stats().fires));
    return Status::OK();
  }

  Status Dump() {
    CALDB_ASSIGN_OR_RETURN(std::string dump, DumpCatalog(catalog_));
    std::printf("%s", dump.c_str());
    return Status::OK();
  }

  Status Explain(const std::string& text) {
    if (text.empty()) return Status::InvalidArgument("\\explain needs a script");
    EvalOptions opts;
    opts.window_days = window_;
    opts.today_day = clock_.NowDay();
    CALDB_ASSIGN_OR_RETURN(std::string report,
                           catalog_.ExplainScript(text, opts));
    std::printf("%s", report.c_str());
    return Status::OK();
  }

  Status ShowStats(const std::string& rest) {
    if (rest == "json") {
      std::printf("%s\n", obs::Metrics().ExportJson().c_str());
    } else if (rest == "reset") {
      obs::Metrics().ResetAll();
      std::printf("metrics reset\n");
    } else if (rest.empty()) {
      std::printf("%s", obs::Metrics().ExportText().c_str());
    } else {
      return Status::InvalidArgument("usage: \\stats [json|reset]");
    }
    return Status::OK();
  }

  Status ShowTrace() {
    std::printf("%s", obs::Trace().ToString().c_str());
    return Status::OK();
  }

  CalendarCatalog catalog_;
  Database db_;
  std::unique_ptr<TemporalRuleManager> rules_;
  VirtualClock clock_;
  std::unique_ptr<DbCron> cron_;
  Interval window_;
};

}  // namespace

int main() { return Shell().Run(); }
