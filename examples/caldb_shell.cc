// caldb_shell: an interactive front end over the whole system — calendar
// expressions, the CALENDARS catalog, the Postquel-style DB, temporal
// rules and DBCRON on a virtual clock — built entirely on the public
// facade (caldb.h): one Engine, one Session, every command routed through
// Session::Execute or the session's typed surface.
//
//   $ build/examples/caldb_shell
//   caldb> \cal [3]/WEEKS:overlaps:days{(1,31)}
//   {(11,17)}
//   caldb> create table alerts (day int, what text)
//   caldb> \rule tue [2]/DAYS:during:WEEKS do append alerts (day = fire_day(), what = 'tuesday')
//   caldb> \advance 1993-02-01
//   caldb> retrieve (a.day, a.what) from a in alerts
//
// Type \help for the command list.  Reads stdin; EOF exits.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "caldb.h"

using namespace caldb;

namespace {

class Shell {
 public:
  Shell() {
    EngineOptions opts;
    // CALDB_DATA_DIR makes the shell durable: recover on start, WAL every
    // mutation, checkpoint on exit (docs/DURABILITY.md).
    if (const char* dir = std::getenv("CALDB_DATA_DIR"); dir && *dir) {
      opts.data_dir = dir;
    }
    auto engine = Engine::Create(opts);
    if (!engine.ok()) {
      std::printf("init: %s\n", engine.status().ToString().c_str());
      return;
    }
    engine_ = std::move(engine).value();
    session_ = engine_->CreateSession();
    if (engine_->durable()) {
      const Engine::RecoveryStats& stats = engine_->recovery_stats();
      std::printf("durable: %s (snapshot %s, %lld WAL records replayed%s)\n",
                  opts.data_dir.c_str(),
                  stats.snapshot_loaded ? "loaded" : "none",
                  static_cast<long long>(stats.wal_records_replayed),
                  stats.torn_tail_truncated ? ", torn tail truncated" : "");
    }
  }

  int Run() {
    if (session_ == nullptr) return 1;
    const Interval window = session_->window();
    std::printf(
        "caldb shell — epoch %s, window days (%lld,%lld). \\help for help.\n",
        FormatCivil(engine_->time_system().epoch()).c_str(),
        static_cast<long long>(window.lo), static_cast<long long>(window.hi));
    std::string line;
    while (Prompt(), std::getline(std::cin, line)) {
      std::string trimmed(TrimWhitespace(line));
      if (trimmed.empty()) continue;
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      Status st = Dispatch(trimmed);
      if (!st.ok()) std::printf("error: %s\n", st.ToString().c_str());
    }
    return 0;
  }

 private:
  void Prompt() {
    std::printf("caldb> ");
    std::fflush(stdout);
  }

  void PrintResult(const QueryResult& result) {
    std::printf("%s", result.ToString().c_str());
    if (result.columns.empty() && result.message.empty()) std::printf("\n");
    if (!result.message.empty() && result.message.back() != '\n') {
      std::printf("\n");
    }
  }

  // Runs a command through the session's uniform entry point and prints
  // the result.
  Status Uniform(const std::string& command) {
    auto result = session_->Execute(command);
    if (!result.ok()) return result.status();
    PrintResult(*result);
    return Status::OK();
  }

  Status Dispatch(const std::string& line) {
    if (line[0] != '\\') return Uniform(line);
    std::istringstream in(line.substr(1));
    std::string cmd;
    in >> cmd;
    std::string rest;
    std::getline(in, rest);
    rest = std::string(TrimWhitespace(rest));

    if (cmd == "help") return Help();
    if (cmd == "cal") return Uniform("cal " + rest);
    if (cmd == "define") return Define(rest);
    if (cmd == "cals") return ListCals();
    if (cmd == "row") return ShowRow(rest);
    if (cmd == "plan") return ShowPlan(rest);
    if (cmd == "window") return SetWindow(rest);
    if (cmd == "today") return SetToday(rest);
    if (cmd == "rule") return DeclareRule(rest);
    if (cmd == "rules") return ListRules();
    if (cmd == "advance") return Uniform("advance to " + rest);
    if (cmd == "dump") return Dump();
    if (cmd == "explain") return Uniform("explain cal " + rest);
    if (cmd == "stats") return ShowStats(rest);
    if (cmd == "trace") return ShowTrace(rest);
    if (cmd == "audit") return ShowAudit(rest);
    if (cmd == "log") return ShowLog(rest);
    if (cmd == "top") return ShowTop();
    if (cmd == "checkpoint") return DoCheckpoint();
    if (cmd == "stmtcache") return ShowStmtCache();
    if (cmd == "prepare") return PrepareNamed(rest);
    if (cmd == "exec") return ExecNamed(rest);
    return Status::InvalidArgument("unknown command \\" + cmd +
                                   " (try \\help)");
  }

  Status Help() {
    std::printf(
        "  \\cal <expr-or-script>     evaluate a calendar expression\n"
        "  \\define <name> <script>   add a derived calendar to the catalog\n"
        "  \\cals                     list user calendars\n"
        "  \\row <name>               show the CALENDARS row (Figure 1 style)\n"
        "  \\plan <name>              show a calendar's eval-plan\n"
        "  \\window <y1> <y2>         set the evaluation window (civil years)\n"
        "  \\today <YYYY-MM-DD>       pin `today` for this session\n"
        "  \\rule <name> <expr> do <command>   declare a temporal rule\n"
        "  \\rules                    list temporal rules + RULE-TIME\n"
        "  \\advance <YYYY-MM-DD>     run DBCRON forward on the virtual clock\n"
        "  \\dump                     dump the catalog\n"
        "  \\explain <script>         run a calendar script with per-step "
        "profiling\n"
        "  \\stats [json|reset]       show (or reset) the metric registry\n"
        "  \\trace [save <path>]      show recent spans, or export the span\n"
        "                            ring as Chrome trace-event JSON\n"
        "  \\audit [n]                last n rule firings (DBCRON + event "
        "rules)\n"
        "  \\log [n]                  last n structured log lines\n"
        "  \\top                      dashboard frame: rates since the "
        "previous \\top\n"
        "  \\checkpoint               snapshot + truncate the WAL (durable\n"
        "                            shells: start with CALDB_DATA_DIR set)\n"
        "  \\stmtcache                shared statement-cache accounting and\n"
        "                            the cached entries with their parameter\n"
        "                            signatures\n"
        "  \\prepare <name> <stmt>    compile a statement (may use $1, $2, "
        "...)\n"
        "                            into a named prepared handle\n"
        "  \\exec <name> [v1 v2 ...]  execute a prepared handle, binding one\n"
        "                            value per placeholder (int, float,\n"
        "                            'text', true/false, null)\n"
        "  anything else             executed through Session::Execute\n"
        "                            (db statements, explain/profile <stmt>,\n"
        "                             cal <script>, define calendar ... as ...,\n"
        "                             declare rule ... on ... do ...,\n"
        "                             advance to <date>)\n"
        "  \\quit                     exit\n");
    return Status::OK();
  }

  Status Define(const std::string& rest) {
    size_t space = rest.find(' ');
    if (space == std::string::npos) {
      return Status::InvalidArgument("usage: \\define <name> <script>");
    }
    return Uniform("define calendar " + rest.substr(0, space) + " as " +
                   std::string(TrimWhitespace(rest.substr(space + 1))));
  }

  Status ListCals() {
    const CalendarCatalog& catalog = engine_->catalog();
    for (const std::string& name : catalog.ListCalendars()) {
      auto def = catalog.Describe(name);
      std::printf("  %-20s %s %s\n", name.c_str(),
                  def.ok()
                      ? std::string(GranularityName(def->granularity)).c_str()
                      : "?",
                  def.ok() && def->values.has_value() ? "(values)"
                                                      : "(derived)");
    }
    return Status::OK();
  }

  Status ShowRow(const std::string& name) {
    CALDB_ASSIGN_OR_RETURN(std::string row, engine_->catalog().FormatRow(name));
    std::printf("%s", row.c_str());
    return Status::OK();
  }

  Status ShowPlan(const std::string& name) {
    CALDB_ASSIGN_OR_RETURN(CalendarDef def, engine_->catalog().Describe(name));
    if (def.eval_plan == nullptr) {
      return Status::NotFound("'" + name + "' has no eval-plan (values only)");
    }
    std::printf("%s", def.eval_plan->ToString().c_str());
    return Status::OK();
  }

  Status SetWindow(const std::string& rest) {
    std::istringstream in(rest);
    int y1 = 0;
    int y2 = 0;
    if (!(in >> y1 >> y2)) {
      return Status::InvalidArgument("usage: \\window <first-year> <last-year>");
    }
    CALDB_RETURN_IF_ERROR(session_->SetWindowYears(y1, y2));
    const Interval window = session_->window();
    std::printf("window days (%lld,%lld)\n", static_cast<long long>(window.lo),
                static_cast<long long>(window.hi));
    return Status::OK();
  }

  Status SetToday(const std::string& rest) {
    CALDB_ASSIGN_OR_RETURN(CivilDate date, ParseCivil(rest));
    session_->SetToday(engine_->time_system().DayPointFromCivil(date));
    std::printf("today = %s (day %lld)\n", FormatCivil(date).c_str(),
                static_cast<long long>(session_->Today()));
    return Status::OK();
  }

  Status DeclareRule(const std::string& rest) {
    size_t name_end = rest.find(' ');
    size_t do_pos = rest.find(" do ");
    if (name_end == std::string::npos || do_pos == std::string::npos ||
        do_pos < name_end) {
      return Status::InvalidArgument(
          "usage: \\rule <name> <calendar-expr> do <db-command>");
    }
    return Uniform("declare rule " + rest.substr(0, name_end) + " on " +
                   std::string(TrimWhitespace(
                       rest.substr(name_end + 1, do_pos - name_end - 1))) +
                   " do " + std::string(TrimWhitespace(rest.substr(do_pos + 4))));
  }

  Status ListRules() {
    CALDB_RETURN_IF_ERROR(Uniform(
        "retrieve (r.rule_id, r.name, r.expression) from r in RULE_INFO"));
    return Uniform("retrieve (t.rule_id, t.next_fire) from t in RULE_TIME");
  }

  Status Dump() {
    CALDB_ASSIGN_OR_RETURN(std::string dump, DumpCatalog(engine_->catalog()));
    std::printf("%s", dump.c_str());
    return Status::OK();
  }

  Status ShowStats(const std::string& rest) {
    if (rest == "json") {
      std::printf("%s\n", obs::Metrics().ExportJson().c_str());
    } else if (rest == "reset") {
      obs::Metrics().ResetAll();
      std::printf("metrics reset\n");
    } else if (rest.empty()) {
      std::printf("%s", obs::Metrics().ExportText().c_str());
    } else {
      return Status::InvalidArgument("usage: \\stats [json|reset]");
    }
    return Status::OK();
  }

  Status ShowTrace(const std::string& rest) {
    if (rest.empty()) {
      std::printf("%s", obs::Trace().ToString().c_str());
      return Status::OK();
    }
    std::istringstream in(rest);
    std::string verb;
    std::string path;
    in >> verb >> path;
    if (verb != "save" || path.empty()) {
      return Status::InvalidArgument("usage: \\trace [save <path>]");
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return Status::InvalidArgument("cannot open '" + path + "' for writing");
    }
    const std::string json = obs::Trace().ExportChromeTrace();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %zu bytes to %s (load in chrome://tracing or "
                "ui.perfetto.dev)\n",
                json.size() + 1, path.c_str());
    return Status::OK();
  }

  Status ShowStmtCache() {
    const StatementCache::Stats stats = engine_->StatementCacheStats();
    const int64_t lookups = stats.hits + stats.misses;
    const double hit_rate =
        lookups == 0 ? 0.0
                     : 100.0 * static_cast<double>(stats.hits) /
                           static_cast<double>(lookups);
    std::printf(
        "statement cache: %zu / %zu entries\n"
        "  hits                 %lld (%.1f%%)\n"
        "  misses               %lld\n"
        "  evictions            %lld\n"
        "  invalidation calls   %lld\n"
        "  entries invalidated  %lld\n",
        stats.size, stats.capacity, static_cast<long long>(stats.hits),
        hit_rate, static_cast<long long>(stats.misses),
        static_cast<long long>(stats.evictions),
        static_cast<long long>(stats.invalidations),
        static_cast<long long>(stats.invalidated_entries));
    const auto entries = engine_->StatementCacheEntries();
    if (!entries.empty()) std::printf("entries (MRU first):\n");
    for (const auto& entry : entries) {
      std::printf("  %-14s %s\n",
                  RenderParamSignature(*entry.compiled).c_str(),
                  entry.normalized_text.c_str());
    }
    return Status::OK();
  }

  // One shell value literal for \exec: int, float, 'text' (or "text"),
  // true/false, null.
  Result<Value> ParseValueLiteral(const std::string& word) {
    if (word == "null") return Value::Null();
    if (word == "true") return Value::Bool(true);
    if (word == "false") return Value::Bool(false);
    if (word.size() >= 2 && (word.front() == '\'' || word.front() == '"') &&
        word.back() == word.front()) {
      return Value::Text(word.substr(1, word.size() - 2));
    }
    if (word.find_first_of(".eE") != std::string::npos) {
      try {
        size_t used = 0;
        double f = std::stod(word, &used);
        if (used == word.size()) return Value::Float(f);
      } catch (...) {
      }
    }
    Result<int64_t> n = ParseInt64(word);
    if (n.ok()) return Value::Int(*n);
    return Status::InvalidArgument(
        "cannot parse '" + word +
        "' as a value (int, float, 'text', true/false, null)");
  }

  // Splits \exec arguments on whitespace, keeping quoted strings (with
  // embedded spaces) as one word including their quotes.
  Result<std::vector<std::string>> SplitValueWords(const std::string& rest) {
    std::vector<std::string> words;
    size_t i = 0;
    while (i < rest.size()) {
      if (std::isspace(static_cast<unsigned char>(rest[i]))) {
        ++i;
        continue;
      }
      if (rest[i] == '\'' || rest[i] == '"') {
        const char quote = rest[i];
        size_t close = rest.find(quote, i + 1);
        if (close == std::string::npos) {
          return Status::InvalidArgument("unterminated string in \\exec");
        }
        words.push_back(rest.substr(i, close - i + 1));
        i = close + 1;
      } else {
        size_t end = i;
        while (end < rest.size() &&
               !std::isspace(static_cast<unsigned char>(rest[end]))) {
          ++end;
        }
        words.push_back(rest.substr(i, end - i));
        i = end;
      }
    }
    return words;
  }

  Status PrepareNamed(const std::string& rest) {
    size_t space = rest.find(' ');
    if (space == std::string::npos) {
      return Status::InvalidArgument("usage: \\prepare <name> <statement>");
    }
    std::string name = rest.substr(0, space);
    std::string text(TrimWhitespace(rest.substr(space + 1)));
    CALDB_ASSIGN_OR_RETURN(PreparedStatement stmt, session_->Prepare(text));
    std::printf("prepared %s %s\n", name.c_str(), stmt.signature().c_str());
    prepared_[name] = std::move(stmt);
    return Status::OK();
  }

  Status ExecNamed(const std::string& rest) {
    std::istringstream in(rest);
    std::string name;
    in >> name;
    if (name.empty()) {
      return Status::InvalidArgument("usage: \\exec <name> [v1 v2 ...]");
    }
    auto it = prepared_.find(name);
    if (it == prepared_.end()) {
      return Status::NotFound("no prepared statement '" + name +
                              "' (use \\prepare first)");
    }
    std::string args;
    std::getline(in, args);
    CALDB_ASSIGN_OR_RETURN(std::vector<std::string> words,
                           SplitValueWords(args));
    ParamList params;
    params.reserve(words.size());
    for (const std::string& word : words) {
      CALDB_ASSIGN_OR_RETURN(Value v, ParseValueLiteral(word));
      params.push_back(std::move(v));
    }
    CALDB_ASSIGN_OR_RETURN(QueryResult result, it->second.Execute(params));
    PrintResult(result);
    return Status::OK();
  }

  Status ShowAudit(const std::string& rest) {
    size_t limit = 32;
    if (!rest.empty()) {
      CALDB_ASSIGN_OR_RETURN(int64_t n, ParseInt64(rest));
      if (n < 1) return Status::InvalidArgument("usage: \\audit [n >= 1]");
      limit = static_cast<size_t>(n);
    }
    std::printf("%s", obs::Audit().ToString(limit).c_str());
    return Status::OK();
  }

  Status ShowLog(const std::string& rest) {
    size_t limit = 20;
    if (!rest.empty()) {
      CALDB_ASSIGN_OR_RETURN(int64_t n, ParseInt64(rest));
      if (n < 1) return Status::InvalidArgument("usage: \\log [n >= 1]");
      limit = static_cast<size_t>(n);
    }
    const std::string out = obs::Log().Tail(limit);
    if (out.empty()) {
      std::printf("(log ring is empty)\n");
    } else {
      std::printf("%s", out.c_str());
    }
    return Status::OK();
  }

  Status DoCheckpoint() {
    CALDB_RETURN_IF_ERROR(engine_->Checkpoint());
    std::printf("checkpoint written\n");
    return Status::OK();
  }

  Status ShowTop() {
    // One dashboard frame per invocation: counter rates are computed over
    // the wall time since the previous \top (since shell start the first
    // time), from the same deltas the metrics snapshotter writes.
    const int64_t now_ns = obs::NowNs();
    const double interval_s =
        static_cast<double>(now_ns - top_last_ns_) / 1e9;
    top_last_ns_ = now_ns;
    std::printf("%s", obs::RenderDashboard(obs::Metrics(), top_deltas_.Step(),
                                           interval_s)
                          .c_str());
    return Status::OK();
  }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Session> session_;
  std::map<std::string, PreparedStatement> prepared_;
  obs::CounterDeltas top_deltas_;
  int64_t top_last_ns_ = obs::NowNs();
};

}  // namespace

int main() { return Shell().Run(); }
