// Quickstart: define calendars, evaluate calendar expressions, inspect the
// CALENDARS catalog — the §3.1/§3.2 material in a dozen lines each, all
// through the public facade (caldb.h): an Engine owns the catalog, a
// Session evaluates scripts with a client-local window.

#include <cstdio>

#include "caldb.h"

using namespace caldb;

int main() {
  // An engine whose time system numbers days from Jan 1 1993 (day 1), as
  // in §3.1 of the paper.  Day 0 does not exist: the day before is -1.
  auto engine = Engine::Create().value();
  std::unique_ptr<Session> session = engine->CreateSession();
  CalendarCatalog& catalog = engine->catalog();
  session->SetWindow(catalog.YearWindow(1993, 1993).value());

  std::printf("== Calendar algebra (§3.1) ==\n");
  auto show = [&](const char* label, const char* script) {
    auto value = session->EvalScript(script);
    if (!value.ok()) {
      std::printf("%-42s ERROR %s\n", label, value.status().ToString().c_str());
      return;
    }
    std::printf("%-42s %s\n", label, value->calendar.ToString().c_str());
  };
  show("WEEKS:during:Jan-1993", "WEEKS:during:days{(1,31)}");
  show("WEEKS:overlaps:Jan-1993 (strict)", "WEEKS:overlaps:days{(1,31)}");
  show("WEEKS.overlaps.Jan-1993 (relaxed)", "WEEKS.overlaps.days{(1,31)}");
  show("[3]/WEEKS:overlaps:Jan-1993", "[3]/WEEKS:overlaps:days{(1,31)}");
  show("third week of every month (first 4)",
       "[1..4]/([3]/WEEKS:overlaps:MONTHS)");
  show("last day of every month", "[n]/DAYS:during:MONTHS");

  std::printf("\n== User-defined calendars (§3.2, Figure 1) ==\n");
  Status st = session->DefineCalendar("Tuesdays", "[2]/DAYS:during:WEEKS",
                                      catalog.YearWindow(1985, 2010).value());
  if (!st.ok()) {
    std::printf("define failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", catalog.FormatRow("Tuesdays")->c_str());

  session->SetWindow(Interval{1, 31});
  auto tuesdays = session->EvalCalendar("Tuesdays");
  std::printf("Tuesdays of January 1993: %s\n",
              tuesdays->ToString().c_str());
  for (const Interval& i : tuesdays->intervals()) {
    if (i.lo < 1) continue;
    CivilDate d = catalog.time_system().CivilFromDayPoint(i.lo);
    std::printf("  day %3lld = %s (%s)\n", static_cast<long long>(i.lo),
                FormatCivil(d).c_str(),
                std::string(WeekdayName(
                    catalog.time_system().WeekdayOfDayPoint(i.lo)))
                    .c_str());
  }

  std::printf("\n== The eval-plan stored in the catalog row ==\n");
  auto def = catalog.Describe("Tuesdays");
  std::printf("%s\n", def->eval_plan->ToString().c_str());

  std::printf("== generate / caloperate (§3.2) ==\n");
  // A second engine with a 1987 epoch — each Engine owns one time system.
  EngineOptions opts87;
  opts87.epoch = CivilDate{1987, 1, 1};
  auto engine87 = Engine::Create(opts87).value();
  std::unique_ptr<Session> session87 = engine87->CreateSession();
  session87->SetWindow(Interval{1, 2000});
  auto generated = session87->EvalScript(
      "generate(YEARS, DAYS, \"1987-01-01\", \"1992-01-03\")");
  std::printf("generate(YEARS, DAYS, [Jan 1 1987, Jan 3 1992]) =\n  %s\n",
              generated->calendar.ToString().c_str());
  session->SetWindow(catalog.YearWindow(1993, 1993).value());
  auto quarters =
      session->EvalScript("caloperate(MONTHS:during:1993/YEARS, *, 3)");
  std::printf("caloperate(MONTHS, *, 3) = %s (in MONTH units)\n",
              quarters->calendar.ToString().c_str());
  return 0;
}
