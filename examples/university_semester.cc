// University administration (§1's second motivating query):
//
//   "Retrieve the names of all foreign students who worked more than 20
//    hours in any week during the semester."
//
// The semester is an application-specific calendar; the calendar operators
// an Engine registers with its database make the query expressible.  Built
// on the public facade (caldb.h) only.

#include <cstdio>

#include "caldb.h"

using namespace caldb;

namespace {

Status Run() {
  CALDB_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine, Engine::Create());
  std::unique_ptr<Session> session = engine->CreateSession();
  const TimeSystem& ts = engine->time_system();

  // The Fall 1993 semester: Aug 30 (day 242) .. Dec 17 (day 351), an
  // application-specific calendar only the university knows.  Literal
  // values go in through DefineValues; the weeks derive via the algebra.
  CALDB_ASSIGN_OR_RETURN(Interval semester,
                         ts.DayIntervalFromCivil({1993, 8, 30}, {1993, 12, 17}));
  CALDB_RETURN_IF_ERROR(engine->catalog().DefineValues(
      "FALL_SEMESTER", Calendar::Order1(Granularity::kDays, {semester})));
  CALDB_RETURN_IF_ERROR(
      session
          ->Execute(
              "define calendar SEMESTER_WEEKS as WEEKS:overlaps:FALL_SEMESTER")
          .status());

  // Tables: students and their weekly work records, keyed by the Monday
  // (day point) of the week worked.
  CALDB_RETURN_IF_ERROR(
      session->Execute("create table students (name text, foreign_student bool)")
          .status());
  CALDB_RETURN_IF_ERROR(
      session->Execute("create table work (name text, week_start int, hours int)")
          .status());
  CALDB_RETURN_IF_ERROR(
      session->Execute("create index on work (week_start)").status());

  // Loading goes through parameterized prepared statements: one compiled
  // shape per table, values bound per row — no text splicing, no quoting.
  struct Student {
    const char* name;
    bool foreign_student;
  };
  CALDB_ASSIGN_OR_RETURN(
      PreparedStatement add_student,
      session->Prepare("append students (name = $1, foreign_student = $2)"));
  for (const Student& s : {Student{"amara", true}, Student{"bo", true},
                           Student{"carol", false}, Student{"dmitri", true}}) {
    CALDB_RETURN_IF_ERROR(
        add_student
            .Execute({Value::Text(s.name), Value::Bool(s.foreign_student)})
            .status());
  }

  // Work records: amara overworks during the semester; bo overworks only
  // in the summer (outside it); dmitri stays under the limit.
  struct WorkRow {
    const char* name;
    CivilDate monday;
    int hours;
  };
  const WorkRow rows[] = {
      {"amara", {1993, 9, 6}, 18},  {"amara", {1993, 10, 4}, 24},
      {"bo", {1993, 7, 5}, 30},     {"bo", {1993, 9, 13}, 12},
      {"carol", {1993, 9, 20}, 26}, {"dmitri", {1993, 11, 1}, 19},
  };
  CALDB_ASSIGN_OR_RETURN(
      PreparedStatement add_work,
      session->Prepare(
          "append work (name = $1, week_start = $2, hours = $3)"));
  for (const WorkRow& w : rows) {
    CALDB_RETURN_IF_ERROR(
        add_work
            .Execute({Value::Text(w.name),
                      Value::Int(ts.DayPointFromCivil(w.monday)),
                      Value::Int(w.hours)})
            .status());
  }

  // The query: overworked weeks *inside the semester calendar*, via the
  // registered cal_contains operator.
  std::printf("Overworked weeks during the Fall 1993 semester:\n");
  CALDB_ASSIGN_OR_RETURN(
      QueryResult overworked,
      session->Execute("retrieve (w.name, w.week_start, w.hours) from w in work "
                       "where w.hours > 20 and "
                       "cal_contains('FALL_SEMESTER', w.week_start)"));
  for (const Row& row : overworked.rows) {
    CALDB_ASSIGN_OR_RETURN(int64_t day, row[1].AsInt());
    std::printf("  %-8s week of %s: %s hours\n",
                row[0].AsText().value().c_str(),
                FormatCivil(ts.CivilFromDayPoint(day)).c_str(),
                row[2].ToString().c_str());
  }

  // The paper's query in one statement — a join between students and
  // work, with the semester condition expressed through the registered
  // calendar operator:
  //
  //   "Retrieve the names of all foreign students who worked more than 20
  //    hours in any week during the semester"
  CALDB_ASSIGN_OR_RETURN(
      QueryResult foreigners,
      session->Execute("retrieve (s.name, max(w.hours) as peak) "
                       "from s in students, w in work "
                       "where s.foreign_student = true and s.name = w.name "
                       "and w.hours > 20 "
                       "and cal_contains('FALL_SEMESTER', w.week_start) "
                       "group by s.name"));
  std::printf("\nForeign students working > 20 hours in any semester week:\n");
  for (const Row& f : foreigners.rows) {
    std::printf("  %s (peak %s hours)\n", f[0].AsText().value().c_str(),
                f[1].ToString().c_str());
  }

  // The semester's weeks themselves, straight from the algebra.
  CALDB_RETURN_IF_ERROR(session->SetWindowYears(1993, 1993));
  CALDB_ASSIGN_OR_RETURN(Calendar weeks,
                         session->EvalCalendar("SEMESTER_WEEKS"));
  std::printf("\nThe semester spans %zu weeks: first %s, last %s\n",
              weeks.size(),
              FormatInterval(weeks.intervals().front()).c_str(),
              FormatInterval(weeks.intervals().back()).c_str());
  return Status::OK();
}

}  // namespace

int main() {
  Status st = Run();
  if (!st.ok()) {
    std::printf("ERROR: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
