// Regular time series and valid time (§1):
//
//   "the GNP time-series, which records the sum total of economic activity
//    in the country in a quarter, is stored for all valid time points in
//    the interval (Jan 1 1985, Dec 31 1993).  But the valid time points,
//    the last day of every quarter in every year, cannot be expressed in
//    TQUEL."
//
// Here the quarter-end calendar IS expressible, so the series stores only
// values and regenerates its time points on request.  The example closes
// with the paper's future-work pattern query (§6a).  Built on the public
// facade (caldb.h): the Engine owns the catalog; the series reads it.

#include <cstdio>

#include "caldb.h"

using namespace caldb;

int main() {
  EngineOptions opts;
  opts.epoch = CivilDate{1985, 1, 1};
  auto engine = Engine::Create(opts).value();
  std::unique_ptr<Session> session = engine->CreateSession();
  const TimeSystem& ts = engine->time_system();

  // The valid-time calendar: last day of every quarter.
  Status st = session
                  ->Execute("define calendar QUARTER_ENDS as "
                            "[n]/DAYS:during:caloperate(MONTHS, *, 3)")
                  .status();
  if (!st.ok()) {
    std::printf("define failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Synthetic US GNP-like levels (billions), 1985Q1..1993Q4: 36 values.
  // Only these 36 doubles are stored — no time points.
  RegularTimeSeries gnp(&engine->catalog(), "QUARTER_ENDS", /*anchor_day=*/1);
  double level = 4200.0;
  unsigned seed = 12345;
  for (int q = 0; q < 36; ++q) {
    seed = seed * 1103515245 + 12345;
    double shock = static_cast<double>((seed >> 16) % 600) / 10.0 - 30.0;
    level += 20.0 + shock;  // trend growth with occasional recessions
    gnp.Append(level);
  }

  std::printf("Stored: %zu values, 0 time points.\n", gnp.size());
  std::printf("Regenerated (first and last four observations):\n");
  auto print_obs = [&](size_t i) {
    TimePoint day = gnp.DayAt(i).value();
    std::printf("  %s  GNP = %8.1f\n",
                FormatCivil(ts.CivilFromDayPoint(day)).c_str(),
                gnp.ValueAt(i).value());
  };
  for (size_t i = 0; i < 4; ++i) print_obs(i);
  std::printf("  ...\n");
  for (size_t i = gnp.size() - 4; i < gnp.size(); ++i) print_obs(i);

  // Valid-time lookup: the value in force on a specific day.
  TimePoint probe = ts.DayPointFromCivil({1990, 6, 30});
  auto value = gnp.ValueOn(probe);
  if (value.ok() && value->has_value()) {
    std::printf("\nGNP recorded on 1990-06-30: %.1f\n", **value);
  }

  // Slice 1991 (paper: "Retrieve ... on expiration-date" style windows).
  auto slice = gnp.Slice(*engine->catalog().YearWindow(1991, 1991));
  std::printf("\n1991 observations: %zu\n", slice->size());

  // Future-work pattern (§6a): quarters where GNP fell.
  auto declines = MatchPattern(gnp, "S > next(S)");
  if (!declines.ok()) {
    std::printf("pattern failed: %s\n", declines.status().ToString().c_str());
    return 1;
  }
  std::printf("\nQuarters followed by a decline ({S_t > Next(S_t)}):\n");
  for (const Interval& i : declines->intervals()) {
    std::printf("  %s\n", FormatCivil(ts.CivilFromDayPoint(i.lo)).c_str());
  }

  // Two consecutive rises, the paper's exact example inverted.
  auto rises = MatchPattern(gnp, "S < next(S) and next(S) < next(next(S))");
  std::printf("\nQuarters starting two consecutive rises: %zu of %zu\n",
              static_cast<size_t>(rises->size()), gnp.size());
  return 0;
}
