// PERF-10: durability overhead — statements/sec through a durable
// caldb::Engine at each fsync policy, against the in-memory engine as the
// baseline.
//
// Each run appends small rows through Engine::Execute, so the measured
// delta is exactly the WAL path: encode + append (+ fsync per policy).
// The ISSUE-7 acceptance bar: fsync=batch costs less than 2x the
// in-memory statement rate (kAlways is expected to be disk-bound and far
// slower; kOff should sit within noise of kBatch).
//
// Auto-checkpointing is disabled so a mid-run snapshot never pollutes a
// timing; each benchmark gets a fresh data directory under the system
// temp dir.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>

#include "caldb.h"

namespace caldb {
namespace {

std::string FreshDataDir(const std::string& name) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("caldb_bench_wal_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::unique_ptr<Engine> MakeEngine(const std::string& data_dir,
                                   storage::FsyncPolicy policy) {
  EngineOptions opts;
  opts.pool_threads = 1;
  opts.data_dir = data_dir;  // "" = in-memory baseline
  opts.fsync_policy = policy;
  opts.checkpoint_wal_bytes = 0;  // no auto-checkpoint mid-benchmark
  auto engine = Engine::Create(opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "bench_wal setup failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  auto r = (*engine)->Execute("create table burst (n int)");
  if (!r.ok()) {
    std::fprintf(stderr, "bench_wal create failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(engine).value();
}

void RunAppendLoop(benchmark::State& state, Engine& engine) {
  int64_t i = 0;
  for (auto _ : state) {
    Result<QueryResult> r =
        engine.Execute("append burst (n = " + std::to_string(i++ & 1023) + ")");
    if (!r.ok()) {
      state.SkipWithError("append failed");
      break;
    }
    benchmark::DoNotOptimize(r->message);
  }
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_WalAppendInMemory(benchmark::State& state) {
  std::unique_ptr<Engine> engine =
      MakeEngine("", storage::FsyncPolicy::kOff);
  RunAppendLoop(state, *engine);
}
BENCHMARK(BM_WalAppendInMemory);

void BM_WalAppendFsyncOff(benchmark::State& state) {
  std::unique_ptr<Engine> engine =
      MakeEngine(FreshDataDir("off"), storage::FsyncPolicy::kOff);
  RunAppendLoop(state, *engine);
}
BENCHMARK(BM_WalAppendFsyncOff);

void BM_WalAppendFsyncBatch(benchmark::State& state) {
  std::unique_ptr<Engine> engine =
      MakeEngine(FreshDataDir("batch"), storage::FsyncPolicy::kBatch);
  RunAppendLoop(state, *engine);
}
BENCHMARK(BM_WalAppendFsyncBatch);

void BM_WalAppendFsyncAlways(benchmark::State& state) {
  std::unique_ptr<Engine> engine =
      MakeEngine(FreshDataDir("always"), storage::FsyncPolicy::kAlways);
  RunAppendLoop(state, *engine);
}
BENCHMARK(BM_WalAppendFsyncAlways);

}  // namespace
}  // namespace caldb
