// PERF-6: calendar operators inside database queries — registered-function
// predicates, and B+tree index vs full scan on time-point columns.

#include <benchmark/benchmark.h>

#include "catalog/calendar_functions.h"

namespace caldb {
namespace {

struct Env {
  CalendarCatalog catalog{TimeSystem{CivilDate{1993, 1, 1}}};
  Database db;

  explicit Env(int64_t rows, bool with_index) {
    (void)RegisterCalendarFunctions(&db, &catalog);
    (void)catalog.DefineDerived("MONTH_ENDS", "[n]/DAYS:during:MONTHS",
                                catalog.YearWindow(1993, 2010).value());
    (void)db.Execute("create table prices (day int, price float)");
    Table* table = db.GetTable("prices").value();
    for (int64_t i = 0; i < rows; ++i) {
      int64_t day = i % 3650 + 1;
      (void)table->Insert(
          {Value::Int(day), Value::Float(100.0 + static_cast<double>(i % 50))});
    }
    if (with_index) (void)db.Execute("create index on prices (day)");
  }
};

void BM_PointLookup_IndexVsScan(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const bool with_index = state.range(1) != 0;
  Env env(rows, with_index);
  for (auto _ : state) {
    auto r = env.db.Execute(
        "retrieve (p.price) from p in prices where p.day = 90");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["indexed"] = with_index ? 1 : 0;
}
BENCHMARK(BM_PointLookup_IndexVsScan)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

void BM_RangeQuery_IndexVsScan(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const bool with_index = state.range(1) != 0;
  Env env(rows, with_index);
  for (auto _ : state) {
    auto r = env.db.Execute(
        "retrieve (count(p.price) as n) from p in prices "
        "where p.day >= 100 and p.day <= 130");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["indexed"] = with_index ? 1 : 0;
}
BENCHMARK(BM_RangeQuery_IndexVsScan)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

void BM_CalendarPredicateQuery(benchmark::State& state) {
  // The paper's "Retrieve (stock.price) on expiration-date" shape: a
  // registered calendar operator in the where clause.
  Env env(state.range(0), /*with_index=*/false);
  for (auto _ : state) {
    auto r = env.db.Execute(
        "retrieve (p.day, p.price) from p in prices "
        "where cal_contains('MONTH_ENDS', p.day) and p.day <= 365");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CalendarPredicateQuery)->Arg(1000)->Arg(10000);

void BM_AppendWithEventRule(benchmark::State& state) {
  // Event-rule overhead on the append path.
  const bool with_rule = state.range(0) != 0;
  CalendarCatalog catalog{TimeSystem{CivilDate{1993, 1, 1}}};
  Database db;
  (void)db.Execute("create table payroll (student text, hours int)");
  (void)db.Execute("create table alerts (student text)");
  if (with_rule) {
    (void)db.Execute(
        "define rule watch on append to payroll where NEW.hours > 20 "
        "do append alerts (student = NEW.student)");
  }
  int i = 0;
  for (auto _ : state) {
    ++i;
    auto r = db.Execute("append payroll (student = 's" + std::to_string(i) +
                        "', hours = " + std::to_string(i % 40) + ")");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.counters["with_rule"] = with_rule ? 1 : 0;
}
BENCHMARK(BM_AppendWithEventRule)->Arg(0)->Arg(1);

}  // namespace
}  // namespace caldb
