// Shared benchmark harness.  Every bench binary links bench_main.cc, which
// runs Google Benchmark with the JsonLineReporter below: the usual console
// table, plus one machine-readable JSON line per benchmark run on stdout —
//
//   BENCH {"name":"BM_GenerateDays/365","iters":123,"ns_per_op":4567.8,
//          "registry":{...MetricRegistry::ExportJson()...}}
//
// The registry snapshot carries the caldb.* counters accumulated so far,
// so scan/cache behaviour can be read off alongside the timings.  When the
// CALDB_BENCH_JSON environment variable names a file, the JSON lines are
// also appended there (the BENCH_*.json convention of the perf scripts).

#ifndef CALDB_BENCH_BENCH_UTIL_H_
#define CALDB_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace caldb::bench {

class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  JsonLineReporter() {
    const char* path = std::getenv("CALDB_BENCH_JSON");
    if (path != nullptr && path[0] != '\0') json_path_ = path;
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double ns_per_op =
          run.iterations == 0
              ? 0.0
              : run.real_accumulated_time * 1e9 /
                    static_cast<double>(run.iterations);
      char head[256];
      std::snprintf(head, sizeof(head),
                    "{\"name\":\"%s\",\"iters\":%lld,\"ns_per_op\":%.1f,"
                    "\"registry\":",
                    run.benchmark_name().c_str(),
                    static_cast<long long>(run.iterations), ns_per_op);
      std::string line = std::string(head) +
                         obs::MetricRegistry::Global().ExportJson() + "}";
      std::printf("BENCH %s\n", line.c_str());
      if (!json_path_.empty()) {
        if (std::FILE* f = std::fopen(json_path_.c_str(), "a")) {
          std::fprintf(f, "%s\n", line.c_str());
          std::fclose(f);
        }
      }
    }
  }

 private:
  std::string json_path_;
};

}  // namespace caldb::bench

#endif  // CALDB_BENCH_BENCH_UTIL_H_
