// PERF-4: cost of the §3.4 parsing pipeline — lexing, parsing, analysis
// (inlining), factorization, and plan compilation.

#include <benchmark/benchmark.h>

#include "catalog/calendar_catalog.h"
#include "lang/analyzer.h"
#include "lang/lexer.h"
#include "lang/optimizer.h"
#include "lang/parser.h"
#include "lang/planner.h"

namespace caldb {
namespace {

constexpr const char* kEmpDays = R"(
  {LDOM = [n]/DAYS:during:MONTHS;
   LDOM_HOL = LDOM:intersects:HOLIDAYS;
   LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
   return (LDOM - LDOM_HOL + LAST_BUS_DAY);})";

constexpr const char* kExpression = "Mondays:during:Januarys:during:1993/Years";

CalendarCatalog* MakeCatalog() {
  auto* catalog = new CalendarCatalog{TimeSystem{CivilDate{1993, 1, 1}}};
  (void)catalog->DefineDerived("Mondays", "[1]/DAYS:during:WEEKS");
  (void)catalog->DefineDerived("Januarys", "[1]/MONTHS:during:YEARS");
  (void)catalog->DefineValues(
      "HOLIDAYS", Calendar::Order1(Granularity::kDays, {{31, 31}, {90, 90}}));
  std::vector<Interval> bus;
  for (int64_t d = 1; d <= 365; ++d) bus.push_back({d, d});
  (void)catalog->DefineValues("AM_BUS_DAYS",
                              Calendar::Order1(Granularity::kDays, bus));
  return catalog;
}

void BM_Lex(benchmark::State& state) {
  for (auto _ : state) {
    auto tokens = Lex(kEmpDays);
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto script = ParseScript(kEmpDays);
    benchmark::DoNotOptimize(script);
  }
}
BENCHMARK(BM_Parse);

void BM_AnalyzeWithInlining(benchmark::State& state) {
  CalendarCatalog* catalog = MakeCatalog();
  for (auto _ : state) {
    Script script = ParseScript(kExpression).value();
    Analyzer analyzer(catalog);
    Status st = analyzer.AnalyzeScript(&script);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(script);
  }
  delete catalog;
}
BENCHMARK(BM_AnalyzeWithInlining);

void BM_Factorize(benchmark::State& state) {
  CalendarCatalog* catalog = MakeCatalog();
  Script analyzed = ParseScript(kExpression).value();
  Analyzer analyzer(catalog);
  (void)analyzer.AnalyzeScript(&analyzed);
  for (auto _ : state) {
    Script copy = analyzed;
    auto st = OptimizeScript(&copy);
    benchmark::DoNotOptimize(copy);
  }
  delete catalog;
}
BENCHMARK(BM_Factorize);

void BM_FullPipelineToPlan(benchmark::State& state) {
  CalendarCatalog* catalog = MakeCatalog();
  for (auto _ : state) {
    auto plan = catalog->CompileScriptText(kEmpDays);
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    benchmark::DoNotOptimize(plan);
  }
  delete catalog;
}
BENCHMARK(BM_FullPipelineToPlan);

void BM_DefineDerivedCalendar(benchmark::State& state) {
  // The cost of one CALENDARS-catalog insertion (parse+analyze+plan), the
  // work the paper does once per calendar definition.
  int i = 0;
  CalendarCatalog* catalog = MakeCatalog();
  for (auto _ : state) {
    Status st = catalog->DefineDerived("cal_" + std::to_string(i++),
                                       "[2]/DAYS:during:WEEKS");
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  delete catalog;
}
BENCHMARK(BM_DefineDerivedCalendar);

}  // namespace
}  // namespace caldb
