// PERF-9: multi-threaded engine throughput — queries/sec through
// caldb::Engine at 1/2/4/8 client threads, read-heavy and mixed
// workloads.
//
// Read-heavy: indexed point retrieves only; every statement takes the
// shared side of the engine's reader/writer lock, so throughput should
// scale with cores (the ISSUE-4 acceptance bar: >= 2.5x from 1 -> 4
// threads on hardware with >= 4 cores; on a single-core host the curve
// is necessarily flat).
//
// Mixed: 90% indexed point retrieves + 10% point replaces, so one in ten
// statements takes the exclusive lock.  The spread between the two curves
// is the cost of writer serialization.
//
// Cal-script: each thread evaluates calendar scripts on its own Session
// (private evaluator + gen-cache); after the first iteration everything
// hits the session cache, so this curve measures the catalog's shared
// read path.
//
// Multi-table mixed (PR 10): N tables, each thread owning a disjoint
// write set — 50% replaces into the thread's own table, 50% point reads
// of other tables.  Run twice, against a per-table-locking engine and an
// identical engine pinned to the legacy single global mutex
// (EngineOptions::per_table_locks = false); the spread is what the
// LockManager's per-table footprint locking buys when writers don't
// actually collide.
//
// Google Benchmark's ->Threads(t) runs the loop in t OS threads; each
// thread holds its own Session, as a real client would.  qps counters are
// rates summed across threads.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "caldb.h"

namespace caldb {
namespace {

constexpr int kRows = 1000;

// One engine per process, built on first use and shared by every
// benchmark thread (sessions are per-thread; the engine is the shared
// thread-safe object under test).
Engine& SharedEngine() {
  static Engine* engine = [] {
    EngineOptions opts;
    opts.pool_threads = 4;
    auto owned = Engine::Create(opts).value();
    auto session = owned->CreateSession();
    auto must = [](const Result<QueryResult>& r) {
      if (!r.ok()) {
        std::fprintf(stderr, "bench setup failed: %s\n",
                     r.status().ToString().c_str());
        std::abort();
      }
    };
    must(session->Execute("create table accounts (id int, balance int)"));
    must(session->Execute("create index on accounts (id)"));
    for (int i = 0; i < kRows; ++i) {
      must(session->Execute("append accounts (id = " + std::to_string(i) +
                            ", balance = " + std::to_string(100 * i) + ")"));
    }
    must(session->Execute(
        "define calendar BenchTuesdays as [2]/DAYS:during:WEEKS"));
    return owned.release();
  }();
  return *engine;
}

constexpr int kTables = 8;
constexpr int kRowsPerTable = 200;

// Builds an engine with kTables identical indexed tables
// wset_0..wset_{N-1}.  `per_table` selects the locking scheme under test.
Engine* MakeMultiTableEngine(bool per_table) {
  EngineOptions opts;
  opts.pool_threads = 4;
  opts.per_table_locks = per_table;
  auto owned = Engine::Create(opts).value();
  auto session = owned->CreateSession();
  for (int t = 0; t < kTables; ++t) {
    std::string table = "wset_" + std::to_string(t);
    auto created = session->Execute("create table " + table + " (id int, v int)");
    if (!created.ok()) std::abort();
    auto indexed = session->Execute("create index on " + table + " (id)");
    if (!indexed.ok()) std::abort();
    for (int i = 0; i < kRowsPerTable; ++i) {
      auto appended = session->Execute("append " + table +
                                       " (id = " + std::to_string(i) +
                                       ", v = 0)");
      if (!appended.ok()) std::abort();
    }
  }
  return owned.release();
}

Engine& MultiTablePerTableEngine() {
  static Engine* engine = MakeMultiTableEngine(/*per_table=*/true);
  return *engine;
}

Engine& MultiTableGlobalLockEngine() {
  static Engine* engine = MakeMultiTableEngine(/*per_table=*/false);
  return *engine;
}

// 50% indexed point replaces + 50% half-table range retrieves, each
// thread confined to its own table (table index = thread index mod
// kTables), so write sets — and whole footprints — are disjoint by
// construction.  Both statements are prepared once and bound per call,
// so the loop measures lock scheduling, not parsing.  The range read is
// deliberately scan-heavy: under the global mutex it holds the shared
// side long enough that every other thread's replace blocks behind it
// (and queued writers then stall later readers — the classic convoy);
// under per-table locks disjoint threads never touch the same lock word
// beyond the shared intent layer, so nobody ever sleeps.
void RunMultiTableMixed(benchmark::State& state, Engine& engine) {
  auto session = engine.CreateSession();
  const std::string table =
      "wset_" + std::to_string(state.thread_index() % kTables);
  auto read = session->Prepare("retrieve (w.v) from w in " + table +
                               " where w.id < $1");
  auto write = session->Prepare("replace w in " + table +
                                " (v = $1) where w.id = $2");
  if (!read.ok() || !write.ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  int key = state.thread_index() * 17;
  int64_t i = 0;
  for (auto _ : state) {
    key = (key + 13) % kRowsPerTable;
    Result<QueryResult> r =
        (++i % 2 == 0)
            ? write->Execute({Value::Int(i), Value::Int(key)})
            : read->Execute({Value::Int(kRowsPerTable / 2)});
    if (!r.ok()) {
      state.SkipWithError("multi-table statement failed");
      break;
    }
    benchmark::DoNotOptimize(r->message);
  }
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_EngineMultiTableMixed(benchmark::State& state) {
  RunMultiTableMixed(state, MultiTablePerTableEngine());
}

void BM_EngineMultiTableMixedGlobalLock(benchmark::State& state) {
  RunMultiTableMixed(state, MultiTableGlobalLockEngine());
}

void BM_EngineReadHeavy(benchmark::State& state) {
  Engine& engine = SharedEngine();
  auto session = engine.CreateSession();
  int key = state.thread_index() * 37;  // de-correlate threads
  for (auto _ : state) {
    key = (key + 13) % kRows;
    auto rows = session->Execute(
        "retrieve (a.balance) from a in accounts where a.id = " +
        std::to_string(key));
    if (!rows.ok() || rows->rows.size() != 1) {
      state.SkipWithError("point read failed");
      break;
    }
    benchmark::DoNotOptimize(rows->rows);
  }
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_EngineMixed(benchmark::State& state) {
  Engine& engine = SharedEngine();
  auto session = engine.CreateSession();
  int key = state.thread_index() * 41;
  int64_t i = 0;
  for (auto _ : state) {
    key = (key + 13) % kRows;
    // Every 10th statement is a point replace: same row population, but
    // the statement classifies as a write and takes the exclusive lock.
    Result<QueryResult> r =
        (++i % 10 == 0)
            ? session->Execute(
                  "replace a in accounts (balance = " + std::to_string(i) +
                  ") where a.id = " + std::to_string(key))
            : session->Execute(
                  "retrieve (a.balance) from a in accounts where a.id = " +
                  std::to_string(key));
    if (!r.ok()) {
      state.SkipWithError("mixed statement failed");
      break;
    }
    benchmark::DoNotOptimize(r->message);
  }
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_EngineCalScript(benchmark::State& state) {
  Engine& engine = SharedEngine();
  auto session = engine.CreateSession();
  for (auto _ : state) {
    auto value = session->Execute("cal BenchTuesdays:intersects:MONTHS");
    if (!value.ok()) {
      state.SkipWithError("cal script failed");
      break;
    }
    benchmark::DoNotOptimize(value->message);
  }
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_EngineExecuteBatch(benchmark::State& state) {
  // The pool path: one client shipping a 64-statement read batch to the
  // engine's worker pool (pool_threads = 4).
  Engine& engine = SharedEngine();
  std::vector<std::string> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back("retrieve (a.balance) from a in accounts where a.id = " +
                    std::to_string((i * 13) % kRows));
  }
  for (auto _ : state) {
    auto results = engine.ExecuteBatch(batch);
    for (const auto& r : results) {
      if (!r.ok()) {
        state.SkipWithError("batch statement failed");
        return;
      }
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * batch.size(),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_EngineReadHeavy)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_EngineMixed)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_EngineCalScript)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_EngineExecuteBatch)->UseRealTime();
BENCHMARK(BM_EngineMultiTableMixed)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();
BENCHMARK(BM_EngineMultiTableMixedGlobalLock)->Threads(1)->Threads(2)
    ->Threads(4)->UseRealTime();

}  // namespace
}  // namespace caldb
