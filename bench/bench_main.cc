// Custom benchmark main: runs with the JSON-line reporter (bench_util.h).

#include <benchmark/benchmark.h>

#include "bench_util.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  caldb::bench::JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
