// PERF-4: the sweep kernels against the quadratic reference join on dense
// DAYS-scale operands (10k..1M intervals).  BM_SweepJoin*/BM_NaiveJoin* at
// the same arg are the before/after pair for the listop rewrite; the naive
// side is capped at 100k (beyond that the quadratic loop takes minutes).
// Counter deltas (caldb.sweep.*) ride along in the BENCH JSON lines.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/algebra.h"
#include "core/generate.h"
#include "core/sweep.h"

namespace caldb {
namespace {

// n day-point singletons (1,1),(2,2),... — the dense lhs.
std::vector<Interval> DayPoints(int64_t n) {
  std::vector<Interval> v;
  v.reserve(n);
  for (int64_t i = 1; i <= n; ++i) v.push_back({i, i});
  return v;
}

// Consecutive 30-day blocks covering the same span — the grouping rhs.
std::vector<Interval> Blocks(int64_t n, int64_t width) {
  std::vector<Interval> v;
  for (int64_t lo = 1; lo + width - 1 <= n; lo += width) {
    v.push_back({lo, lo + width - 1});
  }
  return v;
}

void BM_SweepJoinDuring(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Interval> days = DayPoints(n);
  std::vector<Interval> blocks = Blocks(n, 30);
  for (auto _ : state) {
    int64_t emits = 0;
    SweepJoin(days, ListOp::kDuring, blocks, /*lhs_hi_monotone=*/true,
              [&](size_t, size_t) { ++emits; });
    benchmark::DoNotOptimize(emits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SweepJoinDuring)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_NaiveJoinDuring(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Interval> days = DayPoints(n);
  std::vector<Interval> blocks = Blocks(n, 30);
  for (auto _ : state) {
    int64_t emits = 0;
    naive::Join(days, ListOp::kDuring, blocks,
                [&](size_t, size_t) { ++emits; });
    benchmark::DoNotOptimize(emits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NaiveJoinDuring)->Arg(10000)->Arg(100000);

void BM_SweepJoinOverlaps(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Interval> days = DayPoints(n);
  std::vector<Interval> weeks = Blocks(n, 7);
  for (auto _ : state) {
    int64_t emits = 0;
    SweepJoin(days, ListOp::kOverlaps, weeks, /*lhs_hi_monotone=*/true,
              [&](size_t, size_t) { ++emits; });
    benchmark::DoNotOptimize(emits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SweepJoinOverlaps)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_NaiveJoinOverlaps(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Interval> days = DayPoints(n);
  std::vector<Interval> weeks = Blocks(n, 7);
  for (auto _ : state) {
    int64_t emits = 0;
    naive::Join(days, ListOp::kOverlaps, weeks,
                [&](size_t, size_t) { ++emits; });
    benchmark::DoNotOptimize(emits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NaiveJoinOverlaps)->Arg(10000)->Arg(100000);

// `<` has a gallop fast path: the whole prefix is emitted per rhs element.
void BM_SweepJoinBefore(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Interval> days = DayPoints(n);
  std::vector<Interval> probes = {{n - 100, n - 50}};
  for (auto _ : state) {
    int64_t emits = 0;
    SweepJoin(days, ListOp::kBefore, probes, /*lhs_hi_monotone=*/true,
              [&](size_t, size_t) { ++emits; });
    benchmark::DoNotOptimize(emits);
  }
}
BENCHMARK(BM_SweepJoinBefore)->Arg(100000)->Arg(1000000);

// Full library path at the acceptance scale: foreach over an order-1 rhs
// (one sweep for all children) on 100k-interval operands.
void BM_ForEachDuringDense(benchmark::State& state) {
  const int64_t n = state.range(0);
  Calendar days = Calendar::Order1(Granularity::kDays, DayPoints(n));
  Calendar blocks = Calendar::Order1(Granularity::kDays, Blocks(n, 30));
  for (auto _ : state) {
    auto r = ForEach(days, ListOp::kDuring, blocks, true);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ForEachDuringDense)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_SweepUnionDense(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Interval> a;
  std::vector<Interval> b;
  for (int64_t i = 1; i <= n; i += 2) {
    a.push_back({i, i});
    b.push_back({i + 1, i + 1});
  }
  for (auto _ : state) {
    auto r = SweepUnion(a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SweepUnionDense)->Arg(100000)->Arg(1000000);

void BM_SweepDifferenceDense(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Interval> a = DayPoints(n);
  std::vector<Interval> b;
  for (int64_t i = 6; i <= n; i += 7) b.push_back({i, i});  // drop every 7th
  for (auto _ : state) {
    auto r = SweepDifference(a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SweepDifferenceDense)->Arg(100000)->Arg(1000000);

void BM_SweepGroupDense(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Interval> days = DayPoints(n);
  for (auto _ : state) {
    auto r = SweepGroup(days, std::nullopt, {7});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SweepGroupDense)->Arg(100000)->Arg(1000000);

}  // namespace
}  // namespace caldb
