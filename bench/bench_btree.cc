// Substrate ablation: the B+tree against std::multimap (the obvious
// off-the-shelf alternative) for the index workloads the calendar system
// generates — bulk loads of time points, range scans, mixed churn.

#include <map>
#include <random>

#include <benchmark/benchmark.h>

#include "db/btree.h"

namespace caldb {
namespace {

std::vector<int64_t> Keys(int64_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> keys;
  keys.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    keys.push_back(static_cast<int64_t>(rng() % 100000) + 1);
  }
  return keys;
}

void BM_BTreeInsert(benchmark::State& state) {
  std::vector<int64_t> keys = Keys(state.range(0), 42);
  for (auto _ : state) {
    BPlusTree tree;
    for (size_t i = 0; i < keys.size(); ++i) {
      tree.Insert(keys[i], static_cast<int64_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(100000);

void BM_MultimapInsert(benchmark::State& state) {
  std::vector<int64_t> keys = Keys(state.range(0), 42);
  for (auto _ : state) {
    std::multimap<int64_t, int64_t> map;
    for (size_t i = 0; i < keys.size(); ++i) {
      map.emplace(keys[i], static_cast<int64_t>(i));
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MultimapInsert)->Arg(1000)->Arg(100000);

void BM_BTreeRangeScan(benchmark::State& state) {
  std::vector<int64_t> keys = Keys(state.range(0), 42);
  BPlusTree tree;
  for (size_t i = 0; i < keys.size(); ++i) {
    tree.Insert(keys[i], static_cast<int64_t>(i));
  }
  for (auto _ : state) {
    int64_t sum = 0;
    tree.ScanRange(40000, 60000, [&](int64_t key, int64_t) {
      sum += key;
      return true;
    });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BTreeRangeScan)->Arg(1000)->Arg(100000);

void BM_MultimapRangeScan(benchmark::State& state) {
  std::vector<int64_t> keys = Keys(state.range(0), 42);
  std::multimap<int64_t, int64_t> map;
  for (size_t i = 0; i < keys.size(); ++i) {
    map.emplace(keys[i], static_cast<int64_t>(i));
  }
  for (auto _ : state) {
    int64_t sum = 0;
    for (auto it = map.lower_bound(40000); it != map.end() && it->first <= 60000;
         ++it) {
      sum += it->first;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_MultimapRangeScan)->Arg(1000)->Arg(100000);

void BM_BTreeChurn(benchmark::State& state) {
  // The RULE-TIME workload: every firing deletes one entry and inserts
  // the next firing point.
  std::vector<int64_t> keys = Keys(state.range(0), 7);
  BPlusTree tree;
  for (size_t i = 0; i < keys.size(); ++i) {
    tree.Insert(keys[i], static_cast<int64_t>(i));
  }
  std::mt19937_64 rng(99);
  size_t cursor = 0;
  for (auto _ : state) {
    int64_t victim = static_cast<int64_t>(cursor % keys.size());
    tree.Erase(keys[static_cast<size_t>(victim)], victim);
    keys[static_cast<size_t>(victim)] = static_cast<int64_t>(rng() % 100000) + 1;
    tree.Insert(keys[static_cast<size_t>(victim)], victim);
    ++cursor;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeChurn)->Arg(10000);

void BM_BTreeFanoutSweep(benchmark::State& state) {
  // Ablation over node fan-out.
  const int fanout = static_cast<int>(state.range(0));
  std::vector<int64_t> keys = Keys(100000, 42);
  for (auto _ : state) {
    BPlusTree tree(fanout);
    for (size_t i = 0; i < keys.size(); ++i) {
      tree.Insert(keys[i], static_cast<int64_t>(i));
    }
    benchmark::DoNotOptimize(tree.height());
  }
  state.counters["fanout"] = fanout;
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_BTreeFanoutSweep)->Arg(8)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace caldb
