// FIG-4 / PERF-5: DBCRON at scale — rule-count sweep and probe-period
// sweep over a simulated quarter of virtual time.

#include <benchmark/benchmark.h>

#include "rules/dbcron.h"

namespace caldb {
namespace {

// A pool of weekly/monthly rule expressions so rules don't all share one
// generated calendar.
std::string ExpressionFor(int i) {
  switch (i % 4) {
    case 0:
      return "[" + std::to_string(i % 7 + 1) + "]/DAYS:during:WEEKS";
    case 1:
      return "[n]/DAYS:during:MONTHS";
    case 2:
      return "[" + std::to_string(i % 25 + 1) + "]/DAYS:during:MONTHS";
    default:
      return "[1]/DAYS:during:WEEKS";
  }
}

void BM_AdvanceQuarter(benchmark::State& state) {
  const int num_rules = static_cast<int>(state.range(0));
  const int64_t probe_period = state.range(1);
  int64_t fires = 0;
  for (auto _ : state) {
    state.PauseTiming();
    CalendarCatalog catalog{TimeSystem{CivilDate{1993, 1, 1}}};
    Database db;
    auto rules = TemporalRuleManager::Create(&catalog, &db).value();
    int64_t counter = 0;
    for (int i = 0; i < num_rules; ++i) {
      TemporalAction action;
      action.callback = [&counter](TimePoint) {
        ++counter;
        return Status::OK();
      };
      auto id = rules->DeclareRule("r" + std::to_string(i), ExpressionFor(i),
                                   std::move(action), 1);
      if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    }
    VirtualClock clock(1);
    DbCron cron(rules.get(), &clock, probe_period);
    state.ResumeTiming();

    Status st = cron.AdvanceTo(90);  // Q1 1993
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    fires = cron.stats().fires;
  }
  state.counters["rules"] = num_rules;
  state.counters["probe_period"] = static_cast<double>(probe_period);
  state.counters["fires_per_quarter"] = static_cast<double>(fires);
}

BENCHMARK(BM_AdvanceQuarter)
    ->Args({10, 7})
    ->Args({100, 7})
    ->Args({1000, 7})
    ->Args({100, 1})
    ->Args({100, 30})
    ->Args({100, 90})
    ->Unit(benchmark::kMillisecond);

void BM_DeclareRule(benchmark::State& state) {
  CalendarCatalog catalog{TimeSystem{CivilDate{1993, 1, 1}}};
  Database db;
  auto rules = TemporalRuleManager::Create(&catalog, &db).value();
  int i = 0;
  for (auto _ : state) {
    TemporalAction action;
    action.callback = [](TimePoint) { return Status::OK(); };
    auto id = rules->DeclareRule("r" + std::to_string(i), ExpressionFor(i),
                                 std::move(action), 1);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    ++i;
  }
}
BENCHMARK(BM_DeclareRule);

void BM_RuleTimeProbe(benchmark::State& state) {
  // The cost of one RULE-TIME probe (indexed range scan) at varying rule
  // populations.
  const int num_rules = static_cast<int>(state.range(0));
  CalendarCatalog catalog{TimeSystem{CivilDate{1993, 1, 1}}};
  Database db;
  auto rules = TemporalRuleManager::Create(&catalog, &db).value();
  for (int i = 0; i < num_rules; ++i) {
    TemporalAction action;
    action.callback = [](TimePoint) { return Status::OK(); };
    (void)rules->DeclareRule("r" + std::to_string(i), ExpressionFor(i),
                             std::move(action), 1);
  }
  for (auto _ : state) {
    auto due = rules->DueBetween(1, 7);
    if (!due.ok()) state.SkipWithError(due.status().ToString().c_str());
    benchmark::DoNotOptimize(due);
  }
  state.counters["rules"] = num_rules;
}
BENCHMARK(BM_RuleTimeProbe)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace caldb
