// FIG-2 / FIG-3 / PERF-1: cost of the initial vs factorized evaluation
// plans for the paper's two parse-tree examples, swept over lifespan
// width, with the dynamic window-hint optimization on and off.  The
// paper's claim: after factorization "calendars need only be generated for
// the time interval 1993".

#include <benchmark/benchmark.h>

#include "catalog/calendar_catalog.h"
#include "lang/analyzer.h"
#include "lang/optimizer.h"
#include "lang/parser.h"
#include "lang/planner.h"

namespace caldb {
namespace {

class Fixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    catalog_ = std::make_unique<CalendarCatalog>(TimeSystem{CivilDate{1993, 1, 1}});
    (void)catalog_->DefineDerived("Mondays", "[1]/DAYS:during:WEEKS");
    (void)catalog_->DefineDerived("Januarys", "[1]/MONTHS:during:YEARS");
    (void)catalog_->DefineDerived("Third_Weeks", "[3]/WEEKS:overlaps:MONTHS");
  }

  Plan Compile(const std::string& text, bool factorize) {
    Script script = ParseScript(text).value();
    Analyzer analyzer(catalog_.get());
    Status st = analyzer.AnalyzeScript(&script);
    if (!st.ok()) std::abort();
    if (factorize) (void)OptimizeScript(&script);
    return CompileScript(script).value();
  }

  std::unique_ptr<CalendarCatalog> catalog_;
};

constexpr const char* kExample1 = "Mondays:during:Januarys:during:1993/Years";
constexpr const char* kExample2 = "Third_Weeks:during:Januarys:during:1993/YEARS";

void RunEval(benchmark::State& state, CalendarCatalog* catalog,
             const Plan& plan, int lifespan_years, bool hints) {
  EvalOptions opts;
  int first = 1993 - lifespan_years / 2;
  opts.window_days = catalog->YearWindow(first, first + lifespan_years - 1).value();
  opts.use_window_hints = hints;
  EvalStats stats;
  for (auto _ : state) {
    // A fresh evaluator per query: the paper's setting is one evaluation
    // per rule/query, so generation is paid cold.
    Evaluator evaluator(&catalog->time_system(), catalog);
    stats = EvalStats{};
    auto value = evaluator.Run(plan, opts, &stats);
    if (!value.ok()) state.SkipWithError(value.status().ToString().c_str());
    benchmark::DoNotOptimize(value);
  }
  state.counters["intervals_generated"] =
      static_cast<double>(stats.intervals_generated);
  state.counters["plan_steps"] = static_cast<double>(stats.steps_executed);
  state.counters["lifespan_years"] = lifespan_years;
}

BENCHMARK_DEFINE_F(Fixture, Example1_Initial_NoHints)(benchmark::State& state) {
  Plan plan = Compile(kExample1, /*factorize=*/false);
  RunEval(state, catalog_.get(), plan, static_cast<int>(state.range(0)), false);
}
BENCHMARK_DEFINE_F(Fixture, Example1_Factorized_NoHints)(benchmark::State& state) {
  Plan plan = Compile(kExample1, /*factorize=*/true);
  RunEval(state, catalog_.get(), plan, static_cast<int>(state.range(0)), false);
}
BENCHMARK_DEFINE_F(Fixture, Example1_Initial_Hints)(benchmark::State& state) {
  Plan plan = Compile(kExample1, /*factorize=*/false);
  RunEval(state, catalog_.get(), plan, static_cast<int>(state.range(0)), true);
}
BENCHMARK_DEFINE_F(Fixture, Example1_Factorized_Hints)(benchmark::State& state) {
  Plan plan = Compile(kExample1, /*factorize=*/true);
  RunEval(state, catalog_.get(), plan, static_cast<int>(state.range(0)), true);
}
BENCHMARK_DEFINE_F(Fixture, Example2_Initial_NoHints)(benchmark::State& state) {
  Plan plan = Compile(kExample2, /*factorize=*/false);
  RunEval(state, catalog_.get(), plan, static_cast<int>(state.range(0)), false);
}
BENCHMARK_DEFINE_F(Fixture, Example2_Factorized_NoHints)(benchmark::State& state) {
  Plan plan = Compile(kExample2, /*factorize=*/true);
  RunEval(state, catalog_.get(), plan, static_cast<int>(state.range(0)), false);
}

BENCHMARK_REGISTER_F(Fixture, Example1_Initial_NoHints)->Arg(1)->Arg(5)->Arg(10)->Arg(30);
BENCHMARK_REGISTER_F(Fixture, Example1_Factorized_NoHints)->Arg(1)->Arg(5)->Arg(10)->Arg(30);
BENCHMARK_REGISTER_F(Fixture, Example1_Initial_Hints)->Arg(1)->Arg(5)->Arg(10)->Arg(30);
BENCHMARK_REGISTER_F(Fixture, Example1_Factorized_Hints)->Arg(1)->Arg(5)->Arg(10)->Arg(30);
BENCHMARK_REGISTER_F(Fixture, Example2_Initial_NoHints)->Arg(1)->Arg(10)->Arg(30);
BENCHMARK_REGISTER_F(Fixture, Example2_Factorized_NoHints)->Arg(1)->Arg(10)->Arg(30);

}  // namespace
}  // namespace caldb
