// PERF-3: scaling of the core algebra primitives — generate, the foreach
// operators, selection, and the set operators — over growing spans.

#include <benchmark/benchmark.h>

#include "core/algebra.h"
#include "core/generate.h"
#include "time/time_system.h"

namespace caldb {
namespace {

const TimeSystem& Ts() {
  static const TimeSystem* ts = new TimeSystem{CivilDate{1993, 1, 1}};
  return *ts;
}

void BM_GenerateDays(benchmark::State& state) {
  Interval span{1, state.range(0)};
  for (auto _ : state) {
    auto cal = GenerateBaseCalendar(Ts(), Granularity::kDays, Granularity::kDays,
                                    span, true);
    benchmark::DoNotOptimize(cal);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateDays)->Arg(365)->Arg(3650)->Arg(36500);

void BM_GenerateMonths(benchmark::State& state) {
  Interval span{1, state.range(0)};
  for (auto _ : state) {
    auto cal = GenerateBaseCalendar(Ts(), Granularity::kMonths,
                                    Granularity::kDays, span, false);
    benchmark::DoNotOptimize(cal);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) / 30);
}
BENCHMARK(BM_GenerateMonths)->Arg(365)->Arg(3650)->Arg(36500);

void BM_GenerateWeeks(benchmark::State& state) {
  Interval span{1, state.range(0)};
  for (auto _ : state) {
    auto cal = GenerateBaseCalendar(Ts(), Granularity::kWeeks, Granularity::kDays,
                                    span, false);
    benchmark::DoNotOptimize(cal);
  }
}
BENCHMARK(BM_GenerateWeeks)->Arg(365)->Arg(3650)->Arg(36500);

Calendar DaysCal(int64_t n) {
  return GenerateBaseCalendar(Ts(), Granularity::kDays, Granularity::kDays,
                              Interval{1, n}, true)
      .value();
}
Calendar MonthsCal(int64_t days) {
  return GenerateBaseCalendar(Ts(), Granularity::kMonths, Granularity::kDays,
                              Interval{1, days}, false)
      .value();
}

void BM_ForEachDuringCalendar(benchmark::State& state) {
  Calendar days = DaysCal(state.range(0));
  Calendar months = MonthsCal(state.range(0));
  for (auto _ : state) {
    auto r = ForEach(days, ListOp::kDuring, months, true);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForEachDuringCalendar)->Arg(365)->Arg(3650)->Arg(36500);

void BM_ForEachOverlapsInterval(benchmark::State& state) {
  Calendar days = DaysCal(state.range(0));
  Interval window{state.range(0) / 4, state.range(0) / 2};
  for (auto _ : state) {
    auto r = ForEachInterval(days, ListOp::kOverlaps, window, true);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ForEachOverlapsInterval)->Arg(365)->Arg(3650)->Arg(36500);

void BM_SelectLastPerGroup(benchmark::State& state) {
  Calendar days = DaysCal(state.range(0));
  Calendar months = MonthsCal(state.range(0));
  Calendar grouped = ForEach(days, ListOp::kDuring, months, true).value();
  for (auto _ : state) {
    auto r = Select({SelectionItem::Last()}, grouped);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SelectLastPerGroup)->Arg(365)->Arg(3650)->Arg(36500);

void BM_UnionPointLists(benchmark::State& state) {
  std::vector<Interval> a;
  std::vector<Interval> b;
  for (int64_t i = 1; i <= state.range(0); i += 2) {
    a.push_back({i, i});
    b.push_back({i + 1, i + 1});
  }
  Calendar ca = Calendar::Order1(Granularity::kDays, a);
  Calendar cb = Calendar::Order1(Granularity::kDays, b);
  for (auto _ : state) {
    auto r = Union(ca, cb);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UnionPointLists)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DifferenceBusinessDays(benchmark::State& state) {
  // All days minus weekends: the AM_BUS_DAYS derivation shape.
  int64_t n = state.range(0);
  Calendar days = DaysCal(n);
  std::vector<Interval> weekend;
  for (TimePoint d = 1; d <= n; d = PointAdd(d, 1)) {
    Weekday wd = Ts().WeekdayOfDayPoint(d);
    if (wd == Weekday::kSaturday || wd == Weekday::kSunday) {
      weekend.push_back({d, d});
    }
  }
  Calendar weekends = Calendar::Order1(Granularity::kDays, weekend);
  for (auto _ : state) {
    auto r = Difference(days, weekends);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DifferenceBusinessDays)->Arg(365)->Arg(3650)->Arg(36500);

void BM_CalOperateWeeks(benchmark::State& state) {
  Calendar days = DaysCal(state.range(0));
  for (auto _ : state) {
    auto r = CalOperate(days, std::nullopt, {7});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CalOperateWeeks)->Arg(365)->Arg(3650)->Arg(36500);

void BM_RescaleMonthsToDays(benchmark::State& state) {
  auto months = GenerateBaseCalendar(Ts(), Granularity::kMonths,
                                     Granularity::kMonths,
                                     Interval{1, state.range(0)}, true)
                    .value();
  for (auto _ : state) {
    auto r = Rescale(Ts(), months, Granularity::kDays);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RescaleMonthsToDays)->Arg(12)->Arg(120)->Arg(1200);

}  // namespace
}  // namespace caldb
