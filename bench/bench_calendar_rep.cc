// PERF-5: what the shared CalendarRep buys.  BM_HandleAssign vs
// BM_DeepClone at the same arg are the after/before pair for calendar
// assignment (the old Calendar deep-copied its interval vectors on every
// copy; the COW handle bumps a refcount) — the rewrite claims >= 10x at
// 100k leaf intervals.  BM_GenCacheExactHit and BM_WarmEvaluatorRun pin
// the cache-hit path: a hit hands out a shared handle, so its cost must
// stay flat as the cached calendar grows.  BM_Flattened covers the
// zero-copy sorted flatten.  Counter deltas (caldb.cal.*) ride along in
// the BENCH JSON lines.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "catalog/calendar_catalog.h"
#include "core/calendar.h"
#include "lang/analyzer.h"
#include "lang/evaluator.h"
#include "lang/parser.h"
#include "lang/planner.h"

namespace caldb {
namespace {

// An order-1 calendar of n day-point singletons.
Calendar DaysCalendar(int64_t n) {
  std::vector<Interval> v;
  v.reserve(n);
  for (int64_t i = 1; i <= n; ++i) v.push_back({i, i});
  return Calendar::Order1(Granularity::kDays, std::move(v));
}

// An order-2 calendar grouping those points into 100-wide children.
Calendar GroupedCalendar(int64_t n) {
  std::vector<Calendar> children;
  for (int64_t lo = 1; lo <= n; lo += 100) {
    std::vector<Interval> v;
    for (int64_t i = lo; i < lo + 100 && i <= n; ++i) v.push_back({i, i});
    children.push_back(Calendar::Order1(Granularity::kDays, std::move(v)));
  }
  return Calendar::Nested(Granularity::kDays, std::move(children));
}

// After: assignment is a handle copy (refcount bump), O(1) in n.
void BM_HandleAssign(benchmark::State& state) {
  Calendar src = DaysCalendar(state.range(0));
  for (auto _ : state) {
    Calendar copy = src;
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HandleAssign)->Arg(10000)->Arg(100000)->Arg(1000000);

// Before: the seed's Calendar copied its interval vector on every
// assignment.  Rebuilding from the leaves reproduces that cost.
void BM_DeepClone(benchmark::State& state) {
  Calendar src = DaysCalendar(state.range(0));
  for (auto _ : state) {
    Calendar copy = Calendar::Order1(
        src.granularity(),
        std::vector<Interval>(src.intervals().begin(), src.intervals().end()));
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeepClone)->Arg(10000)->Arg(100000)->Arg(1000000);

// Flattening a nested calendar whose leaf buffer is already sorted is a
// zero-copy view — flat in n.
void BM_Flattened(benchmark::State& state) {
  Calendar src = GroupedCalendar(state.range(0));
  for (auto _ : state) {
    Calendar flat = src.Flattened();
    benchmark::DoNotOptimize(flat);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Flattened)->Arg(10000)->Arg(100000)->Arg(1000000);

// An exact-key cache hit returns a pointer to a shared handle: O(1)
// regardless of the cached calendar's interval count.
void BM_GenCacheExactHit(benchmark::State& state) {
  const int64_t n = state.range(0);
  GenCache cache;
  cache.SetBudget(8, static_cast<size_t>(-1));
  const GenCache::Key key(1, 1, 1, n);
  cache.Insert(key, DaysCalendar(n));
  for (auto _ : state) {
    const Calendar* hit = cache.Find(key);
    Calendar out = *hit;  // what the evaluator hands to the register
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenCacheExactHit)->Arg(10000)->Arg(100000)->Arg(1000000);

// End to end: a warm evaluator re-running a pure GENERATE plan serves the
// calendar from the cache as a shared handle, so per-run cost stays flat
// as the window (and thus the generated calendar) grows.
void BM_WarmEvaluatorRun(benchmark::State& state) {
  CalendarCatalog catalog(TimeSystem{CivilDate{1993, 1, 1}});
  Script script = ParseScript("DAYS").value();
  Analyzer analyzer(&catalog);
  if (!analyzer.AnalyzeScript(&script).ok()) {
    state.SkipWithError("analyze failed");
    return;
  }
  Plan plan = CompileScript(script).value();
  EvalOptions opts;
  opts.window_days = Interval{1, state.range(0)};
  opts.gen_cache_max_bytes = static_cast<size_t>(-1);
  Evaluator evaluator(&catalog.time_system(), &catalog);
  // Warm the cache once outside the timed loop.
  if (!evaluator.Run(plan, opts).ok()) {
    state.SkipWithError("warmup run failed");
    return;
  }
  for (auto _ : state) {
    auto value = evaluator.Run(plan, opts);
    if (!value.ok()) state.SkipWithError(value.status().ToString().c_str());
    benchmark::DoNotOptimize(value);
  }
  state.counters["window_days"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WarmEvaluatorRun)->Arg(4096)->Arg(65536)->Arg(1048576);

}  // namespace
}  // namespace caldb
