// PERF-7: valid-time maintenance for regular time series (§1's GNP case):
// regenerating time points from the calendar vs storing them explicitly,
// plus pattern-matching throughput (§6a).

#include <benchmark/benchmark.h>

#include "timeseries/pattern.h"
#include "timeseries/time_series.h"

namespace caldb {
namespace {

std::unique_ptr<CalendarCatalog> MakeCatalog() {
  auto catalog =
      std::make_unique<CalendarCatalog>(TimeSystem{CivilDate{1985, 1, 1}});
  (void)catalog->DefineDerived("QUARTER_ENDS",
                               "[n]/DAYS:during:caloperate(MONTHS, *, 3)");
  return catalog;
}

void FillValues(size_t n, std::vector<double>* out) {
  unsigned seed = 99;
  double level = 4000;
  for (size_t i = 0; i < n; ++i) {
    seed = seed * 1103515245 + 12345;
    level += static_cast<double>((seed >> 16) % 100) / 10.0 - 3.0;
    out->push_back(level);
  }
}

void BM_RegenerateTimePoints(benchmark::State& state) {
  // Cold materialization: evaluate the calendar and pair points with
  // values each iteration.
  auto catalog = MakeCatalog();
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> values;
  FillValues(n, &values);
  for (auto _ : state) {
    RegularTimeSeries series(catalog.get(), "QUARTER_ENDS", 1);
    for (double v : values) series.Append(v);
    auto pairs = series.Materialize();
    if (!pairs.ok()) state.SkipWithError(pairs.status().ToString().c_str());
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["observations"] = static_cast<double>(n);
}
BENCHMARK(BM_RegenerateTimePoints)->Arg(8)->Arg(40)->Arg(120);

void BM_StoredTimePoints(benchmark::State& state) {
  // The conventional alternative: explicit (day, value) pairs.
  auto catalog = MakeCatalog();
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> values;
  FillValues(n, &values);
  // Precompute the days once (outside timing) to fill the explicit series.
  RegularTimeSeries reference(catalog.get(), "QUARTER_ENDS", 1);
  for (double v : values) reference.Append(v);
  auto days = reference.Materialize().value();
  for (auto _ : state) {
    IrregularTimeSeries series;
    for (const auto& [day, value] : days) {
      (void)series.Append(day, value);
    }
    benchmark::DoNotOptimize(series.points());
  }
  state.counters["observations"] = static_cast<double>(n);
}
BENCHMARK(BM_StoredTimePoints)->Arg(8)->Arg(40)->Arg(120);

void BM_CachedLookup(benchmark::State& state) {
  // Warm lookups against a regenerating series (the cache pays off).
  auto catalog = MakeCatalog();
  RegularTimeSeries series(catalog.get(), "QUARTER_ENDS", 1);
  std::vector<double> values;
  FillValues(static_cast<size_t>(state.range(0)), &values);
  for (double v : values) series.Append(v);
  (void)series.Materialize();  // warm
  TimePoint probe = series.DayAt(series.size() / 2).value();
  for (auto _ : state) {
    auto v = series.ValueOn(probe);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_CachedLookup)->Arg(40)->Arg(120);

void BM_PatternMatch(benchmark::State& state) {
  std::vector<double> values;
  FillValues(static_cast<size_t>(state.range(0)), &values);
  for (auto _ : state) {
    auto matches = MatchPatternIndices(values, "S < next(S)");
    if (!matches.ok()) state.SkipWithError(matches.status().ToString().c_str());
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PatternMatch)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_PatternMatchComplex(benchmark::State& state) {
  std::vector<double> values;
  FillValues(static_cast<size_t>(state.range(0)), &values);
  for (auto _ : state) {
    auto matches = MatchPatternIndices(
        values, "S < next(S) and next(S) < next(next(S)) or S > prev(S) * 2");
    if (!matches.ok()) state.SkipWithError(matches.status().ToString().c_str());
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PatternMatchComplex)->Arg(10000)->Arg(1000000);

}  // namespace
}  // namespace caldb
