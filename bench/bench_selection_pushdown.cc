// PERF-2: the §3.4 selection look-ahead ("the selection predicate
// determines the time interval within which values of calendars are
// generated"), realized dynamically by window hints.  Compares bounded vs
// whole-lifespan generation for selection-restricted expressions.

#include <benchmark/benchmark.h>

#include "catalog/calendar_catalog.h"

namespace caldb {
namespace {

void RunScript(benchmark::State& state, const char* script, bool hints) {
  CalendarCatalog catalog{TimeSystem{CivilDate{1993, 1, 1}}};
  int lifespan_years = static_cast<int>(state.range(0));
  Plan plan = catalog.CompileScriptText(script).value();
  EvalOptions opts;
  opts.window_days =
      catalog.YearWindow(1980, 1980 + lifespan_years - 1).value();
  opts.use_window_hints = hints;
  EvalStats stats;
  for (auto _ : state) {
    Evaluator evaluator(&catalog.time_system(), &catalog);  // cold per query
    stats = EvalStats{};
    auto value = evaluator.Run(plan, opts, &stats);
    if (!value.ok()) state.SkipWithError(value.status().ToString().c_str());
    benchmark::DoNotOptimize(value);
  }
  state.counters["intervals_generated"] =
      static_cast<double>(stats.intervals_generated);
  state.counters["lifespan_years"] = lifespan_years;
}

// Days of one selected month: the inner 1993/YEARS restriction should
// bound DAYS/MONTHS generation regardless of lifespan.
constexpr const char* kBounded = "DAYS:during:[4]/MONTHS:during:1993/YEARS";
// Last day of every month over the whole lifespan: no restriction exists,
// so generation scales with the window either way.
constexpr const char* kUnbounded = "[n]/DAYS:during:MONTHS";

void BM_Bounded_WithPushdown(benchmark::State& state) {
  RunScript(state, kBounded, /*hints=*/true);
}
void BM_Bounded_NoPushdown(benchmark::State& state) {
  RunScript(state, kBounded, /*hints=*/false);
}
void BM_Unbounded_WithPushdown(benchmark::State& state) {
  RunScript(state, kUnbounded, /*hints=*/true);
}
void BM_Unbounded_NoPushdown(benchmark::State& state) {
  RunScript(state, kUnbounded, /*hints=*/false);
}

BENCHMARK(BM_Bounded_WithPushdown)->Arg(1)->Arg(5)->Arg(20)->Arg(50);
BENCHMARK(BM_Bounded_NoPushdown)->Arg(1)->Arg(5)->Arg(20)->Arg(50);
BENCHMARK(BM_Unbounded_WithPushdown)->Arg(1)->Arg(5)->Arg(20);
BENCHMARK(BM_Unbounded_NoPushdown)->Arg(1)->Arg(5)->Arg(20);

}  // namespace
}  // namespace caldb
