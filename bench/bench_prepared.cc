// The parse-once pipeline's dividend: cached / prepared execution versus
// parse-per-call.
//
//  - BM_CompileStatement: raw CompileStatement cost per statement shape —
//    the price every cache miss pays, and what the old pipeline paid on
//    EVERY execution.
//  - BM_ExecuteUncached: Engine::Execute with the statement cache
//    disabled (stmt_cache_entries = 0): the pre-refactor behaviour,
//    parse + classify + execute per call.
//  - BM_ExecuteCached: the same statement through the shared cache —
//    steady state is a hash lookup returning the shared handle.
//  - BM_ExecutePrepared: Session::Prepare once, handle.Execute() in the
//    loop — no text, no lookup, the floor of the pipeline.
//  - BM_ExecuteParameterized: the same prepared handle with a $1
//    placeholder, a fresh bind list per call — what binding costs over
//    the constant-text floor (and what the text path pays to vary the
//    value: a parse per distinct literal).
//  - BM_RuleFireThroughput: DBCRON firings per second with the action
//    pre-compiled at declaration (firings never parse).
//
// The acceptance claim (ISSUE-8): cached and prepared execution beat
// parse-per-call on the same statement; the gap is the parse cost that
// the cache amortizes to zero.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "caldb.h"

namespace caldb {
namespace {

constexpr int kRows = 256;

std::unique_ptr<Engine> MakeEngine(size_t cache_entries) {
  EngineOptions opts;
  opts.pool_threads = 1;
  opts.stmt_cache_entries = cache_entries;
  auto engine = Engine::Create(opts).value();
  auto session = engine->CreateSession();
  auto must = [](const Result<QueryResult>& r) {
    if (!r.ok()) {
      std::fprintf(stderr, "bench setup failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
  };
  must(session->Execute("create table accounts (id int, balance int)"));
  must(session->Execute("create index on accounts (id)"));
  for (int i = 0; i < kRows; ++i) {
    must(session->Execute("append accounts (id = " + std::to_string(i) +
                          ", balance = " + std::to_string(100 * i) + ")"));
  }
  return engine;
}

const std::string kPointRead =
    "retrieve (a.balance) from a in accounts where a.id = 37";

void BM_CompileStatement(benchmark::State& state) {
  for (auto _ : state) {
    auto compiled = CompileStatement(kPointRead);
    if (!compiled.ok()) {
      state.SkipWithError("compile failed");
      break;
    }
    benchmark::DoNotOptimize(compiled);
  }
  state.counters["compiles_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_ExecuteUncached(benchmark::State& state) {
  auto engine = MakeEngine(/*cache_entries=*/0);
  auto session = engine->CreateSession();
  for (auto _ : state) {
    auto rows = session->Execute(kPointRead);
    if (!rows.ok() || rows->rows.size() != 1) {
      state.SkipWithError("uncached read failed");
      break;
    }
    benchmark::DoNotOptimize(rows->rows);
  }
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_ExecuteCached(benchmark::State& state) {
  auto engine = MakeEngine(/*cache_entries=*/512);
  auto session = engine->CreateSession();
  for (auto _ : state) {
    auto rows = session->Execute(kPointRead);
    if (!rows.ok() || rows->rows.size() != 1) {
      state.SkipWithError("cached read failed");
      break;
    }
    benchmark::DoNotOptimize(rows->rows);
  }
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_ExecutePrepared(benchmark::State& state) {
  auto engine = MakeEngine(/*cache_entries=*/512);
  auto session = engine->CreateSession();
  auto prepared = session->Prepare(kPointRead);
  if (!prepared.ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  for (auto _ : state) {
    auto rows = prepared->Execute();
    if (!rows.ok() || rows->rows.size() != 1) {
      state.SkipWithError("prepared read failed");
      break;
    }
    benchmark::DoNotOptimize(rows->rows);
  }
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_ExecuteParameterized(benchmark::State& state) {
  auto engine = MakeEngine(/*cache_entries=*/512);
  auto session = engine->CreateSession();
  auto prepared = session->Prepare(
      "retrieve (a.balance) from a in accounts where a.id = $1");
  if (!prepared.ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  int64_t i = 0;
  for (auto _ : state) {
    auto rows = prepared->Execute({Value::Int(i++ % kRows)});
    if (!rows.ok() || rows->rows.size() != 1) {
      state.SkipWithError("parameterized read failed");
      break;
    }
    benchmark::DoNotOptimize(rows->rows);
  }
  // One statement shape no matter how many distinct values ran.
  state.counters["stmt_cache_size"] =
      static_cast<double>(engine->StatementCacheStats().size);
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_RuleFireThroughput(benchmark::State& state) {
  // A daily rule whose action was compiled at declaration; each iteration
  // advances the clock one day = one parse-free firing.
  auto engine = MakeEngine(/*cache_entries=*/512);
  auto session = engine->CreateSession();
  auto declared = session->Execute(
      "declare rule tick on DAYS do append accounts (id = 999, balance = 0)");
  if (!declared.ok()) {
    state.SkipWithError("declare failed");
    return;
  }
  TimePoint day = engine->Now();
  for (auto _ : state) {
    if (!engine->AdvanceTo(++day).ok()) {
      state.SkipWithError("advance failed");
      break;
    }
  }
  state.counters["fires_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

BENCHMARK(BM_CompileStatement);
BENCHMARK(BM_ExecuteUncached);
BENCHMARK(BM_ExecuteCached);
BENCHMARK(BM_ExecutePrepared);
BENCHMARK(BM_ExecuteParameterized);
BENCHMARK(BM_RuleFireThroughput);

}  // namespace
}  // namespace caldb
